/**
 * @file
 * Tests for the declarative config frontend (src/config), the
 * design-section schema (tlb/design_config), and the sweep-spec
 * expander (sim/sweep_spec) — including the equivalence gate pinning
 * configs/table2.conf to the original hard-coded Table 2 factory and
 * a proof that every parse/eval/schema/lint diagnostic actually
 * fires.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "config/config.hh"
#include "sim/sweep_spec.hh"
#include "tlb/design.hh"
#include "tlb/design_config.hh"
#include "verify/design_lint.hh"

namespace
{

using namespace hbat;
using config::Config;
using config::Value;
using verify::Diag;
using verify::Report;
using verify::Severity;

/** Parse @p text, asserting success. */
Config
parseOk(const std::string &text)
{
    Config cfg;
    Report report;
    EXPECT_TRUE(Config::parseString(text, "test", cfg, report))
        << (report.diags.empty() ? "" : report.diags[0].str());
    return cfg;
}

/** Evaluate @p key in @p section, asserting success. */
Value
evalOk(const Config &cfg, const std::string &section,
       const std::string &key)
{
    const config::Section *sec = cfg.section(section);
    EXPECT_NE(sec, nullptr) << "no section " << section;
    Value v;
    Report report;
    EXPECT_TRUE(cfg.eval(sec, key, v, report))
        << (report.diags.empty() ? "unbound" : report.diags[0].str());
    return v;
}

// ---------------------------------------------------------------- //
// Language: values, arithmetic, substitution, inheritance.
// ---------------------------------------------------------------- //

TEST(ConfigLang, ScalarKinds)
{
    const Config cfg = parseOk("[s]\n"
                               "i = 42\n"
                               "h = 0x80\n"
                               "f = 2.5\n"
                               "t = true\n"
                               "bare = compress\n"
                               "quoted = 'two words'\n");
    EXPECT_EQ(evalOk(cfg, "s", "i").i, 42);
    EXPECT_EQ(evalOk(cfg, "s", "h").i, 128);
    EXPECT_DOUBLE_EQ(evalOk(cfg, "s", "f").f, 2.5);
    EXPECT_TRUE(evalOk(cfg, "s", "t").b);
    EXPECT_EQ(evalOk(cfg, "s", "bare").s, "compress");
    EXPECT_EQ(evalOk(cfg, "s", "quoted").s, "two words");
}

TEST(ConfigLang, ArithmeticPrecedence)
{
    const Config cfg = parseOk("[s]\n"
                               "a = 2 + 3 * 4\n"
                               "b = (2 + 3) * 4\n"
                               "c = 7 / 2\n"          // int div truncates
                               "d = 7.0 / 2\n"        // mixed promotes
                               "e = 10 % 3\n"
                               "f = -2 + 5\n"
                               "g = 2 * -3\n");
    EXPECT_EQ(evalOk(cfg, "s", "a").i, 14);
    EXPECT_EQ(evalOk(cfg, "s", "b").i, 20);
    EXPECT_EQ(evalOk(cfg, "s", "c").i, 3);
    EXPECT_DOUBLE_EQ(evalOk(cfg, "s", "d").f, 3.5);
    EXPECT_EQ(evalOk(cfg, "s", "e").i, 1);
    EXPECT_EQ(evalOk(cfg, "s", "f").i, 3);
    EXPECT_EQ(evalOk(cfg, "s", "g").i, -6);
}

TEST(ConfigLang, SubstitutionAndTopLevelFallback)
{
    const Config cfg = parseOk("issue = 8\n"
                               "[core]\n"
                               "robSize = 36 * $(issue) + 32\n");
    EXPECT_EQ(evalOk(cfg, "core", "robSize").i, 320);
}

TEST(ConfigLang, InheritanceOverrideAndLateBinding)
{
    // The child's issue=2 must feed the robSize expression it
    // inherits from the parent (late binding), and a later binding of
    // the same key wins within a section.
    const Config cfg = parseOk("[core]\n"
                               "issue = 8\n"
                               "robSize = 36 * $(issue) + 32\n"
                               "[small : core]\n"
                               "issue = 4\n"
                               "issue = 2\n");
    EXPECT_EQ(evalOk(cfg, "core", "robSize").i, 320);
    EXPECT_EQ(evalOk(cfg, "small", "robSize").i, 104);
    EXPECT_EQ(evalOk(cfg, "small", "issue").i, 2);
}

TEST(ConfigLang, ListsAndOverlay)
{
    const Config cfg = parseOk("[s]\n"
                               "xs = [8, 32]\n"
                               "ys = $(xs)\n");
    const Value xs = evalOk(cfg, "s", "xs");
    ASSERT_EQ(xs.kind, Value::Kind::List);
    ASSERT_EQ(xs.list.size(), 2u);
    EXPECT_EQ(xs.list[0].i, 8);
    EXPECT_EQ(xs.list[1].i, 32);
    EXPECT_EQ(xs.render(), "[8, 32]");

    // An overlay pins the axis: both the key itself and expressions
    // referencing it see the pinned scalar.
    config::Overlay overlay{{"xs", Value::ofInt(32)}};
    Value v;
    Report report;
    ASSERT_TRUE(cfg.eval(cfg.section("s"), "xs", v, report, &overlay));
    EXPECT_EQ(v.i, 32);
    ASSERT_TRUE(cfg.eval(cfg.section("s"), "ys", v, report, &overlay));
    EXPECT_EQ(v.i, 32);
}

TEST(ConfigLang, KeysInChainOrderedRootFirst)
{
    const Config cfg = parseOk("[a]\n"
                               "one = 1\n"
                               "two = 2\n"
                               "[b : a]\n"
                               "two = 22\n"       // override keeps slot
                               "three = 3\n");
    const std::vector<std::string> keys =
        cfg.keysInChain(cfg.section("b"));
    ASSERT_EQ(keys.size(), 3u);
    EXPECT_EQ(keys[0], "one");
    EXPECT_EQ(keys[1], "two");
    EXPECT_EQ(keys[2], "three");
}

// ---------------------------------------------------------------- //
// Diagnostics: every parse/eval failure mode fires.
// ---------------------------------------------------------------- //

/** Parse @p text expecting failure; return the report. */
Report
parseBad(const std::string &text)
{
    Config cfg;
    Report report;
    EXPECT_FALSE(Config::parseString(text, "test", cfg, report));
    EXPECT_GT(report.countOf(Diag::ConfigSyntax), 0u);
    return report;
}

TEST(ConfigDiags, SyntaxErrors)
{
    parseBad("[unterminated\n");
    parseBad("[]\n");                       // empty section name
    parseBad("[a]\n[a]\n");                 // duplicate section
    parseBad("[a : nowhere]\n");            // unknown parent
    parseBad("[a : a]\n");                  // inheritance cycle
    parseBad("[a]\nnovalue =\n");
    parseBad("[a]\nnoequals 3\n");
    parseBad("[a]\nx = 3 +\n");             // truncated expression
    parseBad("[a]\nx = (3\n");              // unbalanced paren
    parseBad("[a]\nx = [1, [2]]\n");        // nested list
    parseBad("[a]\nx = []\n");              // empty list
    parseBad("[a]\nx = 'open\n");           // unterminated string
    parseBad("[a]\nx = 3 4\n");             // trailing tokens
    parseBad("[a]\nx = [1, 2] + 1\n");      // list is not an operand
}

TEST(ConfigDiags, SyntaxRecoveryReportsSeveral)
{
    // Line-oriented recovery: both bad bindings are reported at once.
    Config cfg;
    Report report;
    EXPECT_FALSE(Config::parseString("[a]\nx = \ny = (1\nz = 3\n",
                                     "test", cfg, report));
    EXPECT_EQ(report.countOf(Diag::ConfigSyntax), 2u);
    // ...and the good binding is still usable.
    EXPECT_EQ(evalOk(cfg, "a", "z").i, 3);
}

/** Evaluate expecting a ConfigExpr diagnostic. */
void
evalBad(const std::string &text, const std::string &key)
{
    const Config cfg = parseOk(text);
    Value v;
    Report report;
    EXPECT_FALSE(cfg.eval(cfg.section("s"), key, v, report))
        << key << " unexpectedly evaluated";
    EXPECT_GT(report.countOf(Diag::ConfigExpr), 0u) << key;
}

TEST(ConfigDiags, ExprErrors)
{
    evalBad("[s]\nx = $(nope)\n", "x");              // unknown var
    evalBad("[s]\nx = $(y)\ny = $(x)\n", "x");       // reference cycle
    evalBad("[s]\nx = $(x) + 1\n", "x");             // self cycle
    evalBad("[s]\nx = 1 / 0\n", "x");                // div by zero
    evalBad("[s]\nx = 1 % 0\n", "x");                // mod by zero
    evalBad("[s]\nx = 1.5 % 2\n", "x");              // mod on float
    evalBad("[s]\nx = 1 + true\n", "x");             // non-number
    evalBad("[s]\nx = -foo\n", "x");                 // negated string
    evalBad("[s]\nx = $(xs) + 1\nxs = [1, 2]\n", "x"); // list arithmetic
}

TEST(ConfigDiags, UnboundKeyIsSilentFalse)
{
    const Config cfg = parseOk("[s]\nx = 1\n");
    Value v;
    Report report;
    EXPECT_FALSE(cfg.eval(cfg.section("s"), "nope", v, report));
    EXPECT_TRUE(report.diags.empty());
}

TEST(ConfigDiags, ParseFileMissing)
{
    Config cfg;
    Report report;
    EXPECT_FALSE(Config::parseFile("/nonexistent/x.conf", cfg, report));
    EXPECT_GT(report.countOf(Diag::ConfigSyntax), 0u);
}

// ---------------------------------------------------------------- //
// Design sections: schema, kinds, variants.
// ---------------------------------------------------------------- //

/** designFromConfig on section "d" of @p text, asserting success. */
tlb::DesignParams
designOk(const std::string &text)
{
    const Config cfg = parseOk(text);
    tlb::DesignParams p;
    Report report;
    EXPECT_TRUE(tlb::designFromConfig(cfg, *cfg.section("d"), nullptr,
                                      p, nullptr, nullptr, report))
        << (report.diags.empty() ? "" : report.diags[0].str());
    return p;
}

TEST(DesignConfig, EveryKindResolves)
{
    const tlb::DesignParams mp = designOk("[d]\nkind = multiported\n"
                                          "baseEntries = 64\n"
                                          "basePorts = 2\n"
                                          "piggybackPorts = 2\n");
    EXPECT_EQ(mp.kind, tlb::DesignParams::Kind::MultiPorted);
    EXPECT_EQ(mp.baseEntries, 64u);
    EXPECT_EQ(mp.basePorts, 2u);
    EXPECT_EQ(mp.piggybackPorts, 2u);

    const tlb::DesignParams il = designOk("[d]\nkind = interleaved\n"
                                          "baseEntries = 128\n"
                                          "banks = 4\nselect = xor\n"
                                          "piggybackBanks = true\n");
    EXPECT_EQ(il.kind, tlb::DesignParams::Kind::Interleaved);
    EXPECT_EQ(il.banks, 4u);
    EXPECT_EQ(il.select, tlb::BankSelect::XorFold);
    EXPECT_TRUE(il.piggybackBanks);
    // Interleaved defaults basePorts to one per bank, like the factory.
    EXPECT_EQ(il.basePorts, 4u);

    const tlb::DesignParams ml = designOk("[d]\nkind = multilevel\n"
                                          "baseEntries = 128\n"
                                          "basePorts = 1\n"
                                          "upperEntries = 16\n"
                                          "upperPorts = 4\n");
    EXPECT_EQ(ml.kind, tlb::DesignParams::Kind::MultiLevel);
    EXPECT_EQ(ml.upperEntries, 16u);
    EXPECT_EQ(ml.upperPorts, 4u);

    const tlb::DesignParams pt = designOk("[d]\n"
                                          "kind = pretranslation\n"
                                          "baseEntries = 128\n"
                                          "basePorts = 1\n"
                                          "upperEntries = 8\n"
                                          "upperPorts = 4\n");
    EXPECT_EQ(pt.kind, tlb::DesignParams::Kind::Pretranslation);
}

/** designFromConfig on section "d", expecting a ConfigKey error. */
void
designBad(const std::string &text)
{
    const Config cfg = parseOk(text);
    tlb::DesignParams p;
    Report report;
    EXPECT_FALSE(tlb::designFromConfig(cfg, *cfg.section("d"), nullptr,
                                       p, nullptr, nullptr, report));
    EXPECT_GT(report.countOf(Diag::ConfigKey), 0u);
}

TEST(DesignConfig, SchemaErrors)
{
    designBad("[d]\nbaseEntries = 64\n");            // no kind
    designBad("[d]\nkind = quantum\n");              // unknown kind
    designBad("[d]\nkind = multiported\nupperEntires = 8\n"); // typo'd
    designBad("[d]\nkind = multiported\nbasePorts = maybe\n");
    designBad("[d]\nkind = multiported\nbasePorts = -1\n");
    designBad("[d]\nkind = interleaved\nselect = hash\n");
    designBad("[d]\nkind = interleaved\npiggybackBanks = 1\n");
    designBad("[d]\nkind = multiported\nname = 7\n");
    // A list is a sweep axis, not a scalar design parameter.
    designBad("[d]\nkind = multiported\nbasePorts = [1, 2]\n");
}

TEST(DesignConfig, VariantsExpandListAxes)
{
    const Config cfg = parseOk("[d]\nkind = multiported\n"
                               "baseEntries = [64, 128, 256]\n"
                               "basePorts = [1, 2]\n");
    std::vector<tlb::DesignVariant> vars;
    Report report;
    ASSERT_TRUE(tlb::designVariants(cfg, *cfg.section("d"), vars,
                                    report));
    ASSERT_EQ(vars.size(), 6u);     // rightmost (basePorts) fastest
    EXPECT_EQ(vars[0].label, "d baseEntries=64 basePorts=1");
    EXPECT_EQ(vars[1].label, "d baseEntries=64 basePorts=2");
    EXPECT_EQ(vars[5].label, "d baseEntries=256 basePorts=2");
    EXPECT_EQ(vars[0].params.baseEntries, 64u);
    EXPECT_EQ(vars[5].params.baseEntries, 256u);
    EXPECT_EQ(vars[5].params.basePorts, 2u);
    ASSERT_EQ(vars[0].echo.size(), 2u);
    EXPECT_EQ(vars[0].echo[0].first, "baseEntries");
    EXPECT_EQ(vars[0].echo[0].second, "64");
}

TEST(DesignConfig, ScalarReferencingListRidesTheAxis)
{
    // piggybackPorts tracks basePorts through arithmetic instead of
    // becoming a fourth/fifth column.
    const Config cfg = parseOk("[d]\nkind = multiported\n"
                               "baseEntries = 128\n"
                               "basePorts = [1, 2]\n"
                               "piggybackPorts = 4 - $(basePorts)\n");
    std::vector<tlb::DesignVariant> vars;
    Report report;
    ASSERT_TRUE(tlb::designVariants(cfg, *cfg.section("d"), vars,
                                    report));
    ASSERT_EQ(vars.size(), 2u);
    EXPECT_EQ(vars[0].params.basePorts, 1u);
    EXPECT_EQ(vars[0].params.piggybackPorts, 3u);
    EXPECT_EQ(vars[1].params.basePorts, 2u);
    EXPECT_EQ(vars[1].params.piggybackPorts, 2u);
}

// ---------------------------------------------------------------- //
// Equivalence gate: the shipped table2.conf IS the old factory.
// ---------------------------------------------------------------- //

TEST(Table2Equivalence, EveryDesignMatchesBuiltinFactory)
{
    for (tlb::Design d : tlb::allDesigns()) {
        SCOPED_TRACE(tlb::designName(d));
        EXPECT_TRUE(tlb::designParams(d) ==
                    tlb::builtinDesignParams(d));
        EXPECT_FALSE(tlb::designDescription(d).empty());
    }
}

TEST(Table2Equivalence, ShippedConfExpandsToCatalogueCleanColumns)
{
    Config cfg;
    Report report;
    ASSERT_TRUE(Config::parseFile(
        HBAT_SOURCE_DIR "/configs/table2.conf", cfg, report));
    sim::SweepSpec spec;
    ASSERT_TRUE(sim::expandSweepSpec(cfg, sim::SimConfig{}, spec,
                                     report));
    ASSERT_EQ(spec.columns.size(), tlb::allDesigns().size());
    for (size_t i = 0; i < spec.columns.size(); ++i) {
        SCOPED_TRACE(spec.columns[i].label);
        const tlb::Design d = tlb::allDesigns()[i];
        EXPECT_EQ(spec.columns[i].label, tlb::designName(d));
        ASSERT_TRUE(spec.columns[i].sim.customDesign.has_value());
        EXPECT_TRUE(*spec.columns[i].sim.customDesign ==
                    tlb::builtinDesignParams(d));
        Report lint;
        verify::lintConfig(spec.columns[i].sim, lint);
        EXPECT_TRUE(lint.clean(Severity::Warning));
    }
}

// ---------------------------------------------------------------- //
// Sweep-spec expansion.
// ---------------------------------------------------------------- //

TEST(SweepSpec, CrossProductOrderAndEcho)
{
    const Config cfg = parseOk("[t]\nkind = multiported\n"
                               "baseEntries = [64, 128]\n"
                               "basePorts = 4\n"
                               "[sweep]\n"
                               "designs = [t]\n"
                               "programs = compress\n"
                               "scale = 0.5\n"
                               "pageBytes = [4096, 8192]\n"
                               "intRegs = [8, 32]\n"
                               "fpRegs = $(intRegs)\n");
    sim::SweepSpec spec;
    Report report;
    ASSERT_TRUE(sim::expandSweepSpec(cfg, sim::SimConfig{}, spec,
                                     report))
        << (report.diags.empty() ? "" : report.diags[0].str());

    ASSERT_EQ(spec.programs.size(), 1u);
    EXPECT_EQ(spec.programs[0], "compress");
    // 2 capacities x 2 page sizes x 2 budgets; fpRegs rides intRegs.
    ASSERT_EQ(spec.columns.size(), 8u);
    EXPECT_EQ(spec.columns[0].label,
              "t baseEntries=64 pageBytes=4096 intRegs=8");
    // Design axis outermost, machine axes rightmost-fastest.
    EXPECT_EQ(spec.columns[1].label,
              "t baseEntries=64 pageBytes=4096 intRegs=32");
    EXPECT_EQ(spec.columns[2].label,
              "t baseEntries=64 pageBytes=8192 intRegs=8");
    EXPECT_EQ(spec.columns[4].label,
              "t baseEntries=128 pageBytes=4096 intRegs=8");

    const sim::SweepColumnSpec &col = spec.columns[1];
    EXPECT_EQ(col.designSection, "t");
    EXPECT_TRUE(col.hasScale);
    EXPECT_DOUBLE_EQ(col.scale, 0.5);
    EXPECT_EQ(col.sim.pageBytes, 4096u);
    EXPECT_EQ(col.sim.budget.intRegs, 32);
    EXPECT_EQ(col.sim.budget.fpRegs, 32);
    ASSERT_TRUE(col.sim.customDesign.has_value());
    EXPECT_EQ(col.sim.customDesign->baseEntries, 64u);
    EXPECT_EQ(col.sim.designLabel, col.label);

    // Echo carries the design section, the design axis, and every
    // bound machine key with its per-cell resolved value.
    auto echoed = [&](const std::string &key) -> std::string {
        for (const auto &[k, v] : col.echo)
            if (k == key)
                return v;
        return "<missing>";
    };
    EXPECT_EQ(echoed("design"), "t");
    EXPECT_EQ(echoed("baseEntries"), "64");
    EXPECT_EQ(echoed("pageBytes"), "4096");
    EXPECT_EQ(echoed("intRegs"), "32");
    EXPECT_EQ(echoed("fpRegs"), "32");
    EXPECT_EQ(echoed("scale"), "0.5");
}

TEST(SweepSpec, MachineKeysReachSimConfig)
{
    const Config cfg = parseOk("[t]\nkind = multiported\n"
                               "baseEntries = 128\nbasePorts = 4\n"
                               "[sweep]\n"
                               "designs = t\n"
                               "inOrder = true\n"
                               "seed = 7\n"
                               "issueWidth = 4\n"
                               "robSize = 96\n"
                               "lsqSize = 24\n"
                               "fetchQueueSize = 8\n"
                               "cachePorts = 2\n"
                               "memPorts = 2\n"
                               "mispredictPenalty = 5\n"
                               "tlbMissLatency = 40\n"
                               "intAlu = 4\n"
                               "dcacheBytes = 16384\n"
                               "dcacheAssoc = 2\n"
                               "icacheMissLatency = 12\n");
    sim::SweepSpec spec;
    Report report;
    ASSERT_TRUE(sim::expandSweepSpec(cfg, sim::SimConfig{}, spec,
                                     report));
    ASSERT_EQ(spec.columns.size(), 1u);
    const sim::SimConfig &sc = spec.columns[0].sim;
    EXPECT_TRUE(sc.inOrder);
    EXPECT_EQ(sc.seed, 7u);
    EXPECT_EQ(sc.issueWidth, 4u);
    EXPECT_EQ(sc.robSize, 96u);
    EXPECT_EQ(sc.lsqSize, 24u);
    EXPECT_EQ(sc.fetchQueueSize, 8u);
    EXPECT_EQ(sc.cachePorts, 2u);
    EXPECT_EQ(sc.fus.memPorts, 2u);
    EXPECT_EQ(sc.mispredictPenalty, 5u);
    EXPECT_EQ(sc.tlbMissLatency, 40u);
    EXPECT_EQ(sc.fus.intAlu, 4u);
    EXPECT_EQ(sc.dcache.sizeBytes, 16384u);
    EXPECT_EQ(sc.dcache.assoc, 2u);
    EXPECT_EQ(sc.icache.missLatency, 12u);
}

/** expandSweepSpec on @p text, expecting @p code. */
void
sweepBad(const std::string &text, Diag code)
{
    const Config cfg = parseOk(text);
    sim::SweepSpec spec;
    Report report;
    EXPECT_FALSE(sim::expandSweepSpec(cfg, sim::SimConfig{}, spec,
                                      report));
    EXPECT_GT(report.countOf(code), 0u);
}

TEST(SweepSpec, SchemaErrors)
{
    sweepBad("[t]\nkind = multiported\n", Diag::ConfigKey); // no [sweep]
    sweepBad("[sweep]\nprograms = compress\n", Diag::ConfigKey);
    sweepBad("[sweep]\ndesigns = [ghost]\n", Diag::ConfigKey);
    sweepBad("[sweep]\ndesigns = 42\n", Diag::ConfigKey);
    sweepBad("[t]\nkind = multiported\nbaseEntries = 128\n"
             "[sweep]\ndesigns = t\nwarpFactor = 9\n",
             Diag::ConfigKey);                   // unknown machine key
    sweepBad("[t]\nkind = multiported\nbaseEntries = 128\n"
             "[sweep]\ndesigns = t\ninOrder = 3\n",
             Diag::ConfigKey);                   // type mismatch
    sweepBad("[t]\nkind = multiported\nbaseEntries = 128\n"
             "[sweep]\ndesigns = t\nscale = -1\n",
             Diag::ConfigKey);
    sweepBad("[t]\nkind = multiported\nbaseEntries = 128\n"
             "[sweep]\ndesigns = t\npageBytes = $(nope)\n",
             Diag::ConfigExpr);                  // axis eval failure
}

TEST(SweepSpec, UnknownDesignSectionIsLineAnchored)
{
    // Naming a section that does not exist must fail at expansion
    // time with a ConfigKey diagnostic anchored to the `designs`
    // binding's line — not a late fatal during cell construction.
    const Config cfg = parseOk("[t]\nkind = multiported\n"
                               "baseEntries = 128\n"
                               "[sweep]\n"
                               "programs = compress\n"
                               "designs = [t, ghost]\n");  // line 6
    sim::SweepSpec spec;
    Report report;
    EXPECT_FALSE(sim::expandSweepSpec(cfg, sim::SimConfig{}, spec,
                                      report));
    ASSERT_GT(report.countOf(Diag::ConfigKey), 0u);
    const std::string msg = report.diags[0].str();
    EXPECT_NE(msg.find("test:6:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("unknown section 'ghost'"), std::string::npos)
        << msg;
}

TEST(SweepSpec, LintGateCatchesBadCells)
{
    // Structurally broken cells expand fine and fail lintConfig —
    // the harness aborts before simulating.
    const Config cfg = parseOk("[bad]\nkind = multiported\n"
                               "baseEntries = 100\nbasePorts = 9\n"
                               "[sweep]\ndesigns = bad\n"
                               "issueWidth = 64\npageBytes = 3000\n");
    sim::SweepSpec spec;
    Report report;
    ASSERT_TRUE(sim::expandSweepSpec(cfg, sim::SimConfig{}, spec,
                                     report));
    ASSERT_EQ(spec.columns.size(), 1u);
    Report lint;
    verify::lintConfig(spec.columns[0].sim, lint);
    EXPECT_GT(lint.countOf(Diag::ConfigMachine), 0u);
    EXPECT_GT(lint.countOf(Diag::ConfigPageSize), 0u);
    EXPECT_GT(lint.countOf(Diag::DesignStructure), 0u);
    EXPECT_GT(lint.countOf(Diag::DesignPorts), 0u);
}

// ---------------------------------------------------------------- //
// The shipped example specs stay valid (and broken stays broken).
// ---------------------------------------------------------------- //

TEST(ShippedSpecs, CampaignExampleExpandsClean)
{
    Config cfg;
    Report report;
    ASSERT_TRUE(Config::parseFile(
        HBAT_SOURCE_DIR "/configs/campaign_example.conf", cfg,
        report));
    sim::SweepSpec spec;
    ASSERT_TRUE(sim::expandSweepSpec(cfg, sim::SimConfig{}, spec,
                                     report));
    // 2 designs x 2 capacities x 2 page sizes x 2 budgets.
    ASSERT_EQ(spec.columns.size(), 16u);
    ASSERT_EQ(spec.programs.size(), 2u);
    for (const sim::SweepColumnSpec &col : spec.columns) {
        SCOPED_TRACE(col.label);
        Report lint;
        verify::lintConfig(col.sim, lint);
        EXPECT_TRUE(lint.clean(Severity::Warning));
        // The arithmetic keys resolved: robSize = 36*8+32.
        EXPECT_EQ(col.sim.robSize, 320u);
        EXPECT_EQ(col.sim.issueWidth, 8u);
        // fpRegs rides the intRegs axis.
        EXPECT_EQ(col.sim.budget.fpRegs, col.sim.budget.intRegs);
    }
    EXPECT_EQ(spec.columns[8].label.substr(0, 6), "I4/PBx");
}

TEST(ShippedSpecs, BrokenExampleFailsLint)
{
    Config cfg;
    Report report;
    ASSERT_TRUE(Config::parseFile(
        HBAT_SOURCE_DIR "/configs/broken_example.conf", cfg, report));
    sim::SweepSpec spec;
    ASSERT_TRUE(sim::expandSweepSpec(cfg, sim::SimConfig{}, spec,
                                     report));
    ASSERT_EQ(spec.columns.size(), 1u);
    Report lint;
    verify::lintConfig(spec.columns[0].sim, lint);
    EXPECT_FALSE(lint.clean(Severity::Error));
}

TEST(ShippedSpecs, TlbSizeIssueSweepExpands)
{
    Config cfg;
    Report report;
    ASSERT_TRUE(Config::parseFile(
        HBAT_SOURCE_DIR "/configs/tlbsize_issue.conf", cfg, report));
    sim::SweepSpec spec;
    ASSERT_TRUE(sim::expandSweepSpec(cfg, sim::SimConfig{}, spec,
                                     report));
    EXPECT_EQ(spec.columns.size(), 12u);    // 4 capacities x 3 widths
}

} // namespace
