/**
 * @file
 * Quickstart: build a small program with the kasm builder, run it on
 * the cycle-level simulator under two translation designs, and read
 * the statistics.
 *
 *   $ ./build/examples/quickstart
 *
 * The program strides through an array summing elements — four
 * independent loads per iteration, so the single-ported TLB (T1)
 * visibly throttles it while the multi-level M8 does not.
 */

#include <cstdio>

#include "kasm/program_builder.hh"
#include "sim/simulator.hh"
#include "tlb/design.hh"

int
main()
{
    using namespace hbat;

    // 1. Write a program against virtual registers.
    kasm::ProgramBuilder pb("quickstart");
    auto &b = pb.code();

    const VAddr array = pb.space(64 * 1024, 64);    // 64 KB of data
    kasm::VReg abase = b.vint(), base = b.vint(), off = b.vint();
    kasm::VReg i = b.vint(), sum = b.vint();
    kasm::VReg v0 = b.vint(), v1 = b.vint(), v2 = b.vint(),
               v3 = b.vint();

    b.li(abase, uint32_t(array));
    b.li(off, 0);
    b.li(sum, 0);
    b.forLoop(i, 2000, [&] {
        b.add(base, abase, off);
        b.lw(v0, base, 0);
        b.lw(v1, base, 4096);       // four pages touched per pass
        b.lw(v2, base, 8192);
        b.lw(v3, base, 12288);
        b.add(sum, sum, v0);
        b.add(sum, sum, v1);
        b.add(sum, sum, v2);
        b.add(sum, sum, v3);
        b.addi(off, off, 4);
        b.andi(off, off, 0x0ffc);   // wrap within the first page
    });
    b.halt();

    // 2. Link for the baseline 32/32 architected registers.
    const kasm::Program prog = pb.link(kasm::RegBudget{32, 32});
    std::printf("linked %zu instructions\n\n", prog.text.size());

    // 3. Run under any Table 2 design.
    for (tlb::Design d : {tlb::Design::T4, tlb::Design::T1,
                          tlb::Design::M8, tlb::Design::PB2}) {
        sim::SimConfig cfg;
        cfg.design = d;
        const sim::SimResult r = sim::simulate(prog, cfg);
        std::printf(
            "%-5s  cycles=%8llu  IPC=%.2f  port-conflicts=%llu  "
            "shielded=%llu  walks=%llu\n",
            tlb::designName(d).c_str(),
            (unsigned long long)r.cycles(), r.ipc(),
            (unsigned long long)r.pipe.xlate.noPort,
            (unsigned long long)r.pipe.xlate.shielded,
            (unsigned long long)r.pipe.tlbWalks);
    }
    return 0;
}
