/**
 * @file
 * Writing a custom workload: a blocked 48x48 integer matrix multiply
 * built with the kasm API, then linked for both the baseline (32/32)
 * and the constrained (8/8) register files — the same mechanism the
 * Figure 9 experiment uses — and evaluated across three translation
 * designs.
 *
 *   $ ./build/examples/custom_workload
 */

#include <cstdio>
#include <vector>

#include "common/rng.hh"
#include "kasm/program_builder.hh"
#include "sim/simulator.hh"
#include "tlb/design.hh"

namespace
{

using namespace hbat;

constexpr uint32_t kN = 48;

/** C = A * B over row-major int32 matrices, inner loop unrolled x4. */
void
buildMatmul(kasm::ProgramBuilder &pb)
{
    auto &b = pb.code();
    Rng rng(99);

    std::vector<uint32_t> init(kN * kN);
    for (auto &v : init)
        v = uint32_t(rng.below(100));
    const VAddr ma = pb.words(init);
    for (auto &v : init)
        v = uint32_t(rng.below(100));
    const VAddr mb = pb.words(init);
    const VAddr mc = pb.space(uint64_t(kN) * kN * 4, 8);

    kasm::VReg i = b.vint(), j = b.vint(), k = b.vint();
    kasm::VReg pa = b.vint(), pbp = b.vint(), acc = b.vint();
    kasm::VReg n = b.vint(), t = b.vint(), u = b.vint();

    b.li(n, kN);
    b.li(i, 0);
    kasm::VLabel iLoop = b.label(), iDone = b.label();
    kasm::VLabel jLoop = b.label(), jDone = b.label();
    kasm::VLabel kLoop = b.label(), kDone = b.label();

    b.bind(iLoop);
    b.bge(i, n, iDone);
    b.li(j, 0);
    b.bind(jLoop);
    b.bge(j, n, jDone);

    // acc = sum_k A[i][k] * B[k][j]
    b.li(acc, 0);
    // pa = &A[i][0]
    b.li(pa, uint32_t(ma));
    b.mul(t, i, n);
    b.slli(t, t, 2);
    b.add(pa, pa, t);
    // pb = &B[0][j]
    b.li(pbp, uint32_t(mb));
    b.slli(t, j, 2);
    b.add(pbp, pbp, t);

    b.li(k, 0);
    b.bind(kLoop);
    b.bge(k, n, kDone);
    for (int un = 0; un < 4; ++un) {
        b.lwpi(t, pa, 4);                   // A[i][k], post-increment
        b.lw(u, pbp, 0);                    // B[k][j]
        b.mul(t, t, u);
        b.add(acc, acc, t);
        b.addk(pbp, pbp, int64_t(kN) * 4);  // next row of B
    }
    b.addi(k, k, 4);
    b.jmp(kLoop);
    b.bind(kDone);

    // C[i][j] = acc
    b.li(t, uint32_t(mc));
    b.mul(u, i, n);
    b.add(u, u, j);
    b.slli(u, u, 2);
    b.add(t, t, u);
    b.sw(acc, t, 0);

    b.addi(j, j, 1);
    b.jmp(jLoop);
    b.bind(jDone);
    b.addi(i, i, 1);
    b.jmp(iLoop);
    b.bind(iDone);
    b.halt();
}

} // namespace

int
main()
{
    std::printf("%-8s %-6s %10s %8s %10s %10s\n", "regs", "design",
                "insts", "IPC", "loads", "stores");

    for (const int regs : {32, 8}) {
        kasm::ProgramBuilder pb("matmul");
        buildMatmul(pb);
        const kasm::Program prog =
            pb.link(kasm::RegBudget{regs, regs});

        for (tlb::Design d :
             {tlb::Design::T4, tlb::Design::T1, tlb::Design::M8}) {
            sim::SimConfig cfg;
            cfg.design = d;
            const sim::SimResult r = sim::simulate(prog, cfg);
            std::printf("%-8d %-6s %10llu %8.2f %10llu %10llu\n",
                        regs, tlb::designName(d).c_str(),
                        (unsigned long long)r.pipe.committed, r.ipc(),
                        (unsigned long long)r.pipe.committedLoads,
                        (unsigned long long)r.pipe.committedStores);
        }
    }
    std::printf("\nNote how the 8-register link multiplies loads and "
                "stores (spill code),\nand how designs differ more "
                "when bandwidth demand is higher.\n");
    return 0;
}
