/**
 * @file
 * Disassembler walk-through: builds a workload at both register
 * budgets and prints the first instructions of each binary, showing
 * the binary encoding round-trip and what spill code looks like.
 *
 *   $ ./build/examples/disassemble [workload] [count]
 */

#include <cstdio>
#include <cstdlib>

#include "isa/isa.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;

    const char *name = argc > 1 ? argv[1] : "compress";
    const size_t count = argc > 2 ? size_t(std::atoi(argv[2])) : 24;

    for (const int regs : {32, 8}) {
        const kasm::Program prog = workloads::build(
            name, kasm::RegBudget{regs, regs}, 0.01);
        std::printf("== %s linked for %d int / %d fp registers "
                    "(%zu instructions) ==\n",
                    name, regs, regs, prog.text.size());
        const size_t n = std::min(count, prog.text.size());
        for (size_t i = 0; i < n; ++i) {
            const VAddr pc = prog.textBase + i * 4;
            const isa::Inst inst = isa::decode(prog.text[i]);
            std::printf("  %08llx:  %08x  %s\n",
                        (unsigned long long)pc, prog.text[i],
                        isa::disassemble(inst, pc).c_str());
        }
        std::printf("\n");
    }
    return 0;
}
