/**
 * @file
 * Design explorer: a command-line driver over the full simulator.
 *
 *   $ ./build/examples/design_explorer [workload] [design]
 *         [--scale f] [--pages n] [--inorder] [--regs n]
 *
 * With no arguments it runs xlisp under M8 and prints a detailed
 * report: pipeline, branch, cache, and translation statistics —
 * everything a design-space exploration around the paper's Table 2
 * needs from one run.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/stats.hh"
#include "sim/simulator.hh"
#include "tlb/design.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;

    std::string workload = "xlisp";
    std::string design = "M8";
    double scale = 0.3;
    unsigned pages = 4096;
    bool in_order = false;
    int regs = 32;

    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            scale = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--pages") == 0 &&
                   i + 1 < argc) {
            pages = unsigned(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--regs") == 0 &&
                   i + 1 < argc) {
            regs = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--inorder") == 0) {
            in_order = true;
        } else if (positional == 0) {
            workload = argv[i];
            ++positional;
        } else {
            design = argv[i];
            ++positional;
        }
    }

    const workloads::Workload &w = workloads::find(workload);
    std::printf("workload : %s  (%s)\n", w.name, w.paperAnalogue);
    std::printf("           %s\n", w.behaviour);

    const tlb::Design d = tlb::parseDesign(design);
    std::printf("design   : %s — %s\n", tlb::designName(d).c_str(),
                tlb::designDescription(d).c_str());
    std::printf("machine  : 8-way %s, %u-byte pages, %d int/%d fp "
                "regs, scale %.2f\n\n",
                in_order ? "in-order" : "out-of-order", pages, regs,
                regs, scale);

    const kasm::Program prog =
        workloads::build(workload, kasm::RegBudget{regs, regs}, scale);
    sim::SimConfig cfg;
    cfg.design = d;
    cfg.pageBytes = pages;
    cfg.inOrder = in_order;
    const sim::SimResult r = sim::simulate(prog, cfg);

    const auto &p = r.pipe;
    const auto &x = p.xlate;
    std::printf("-- pipeline ------------------------------------\n");
    std::printf("cycles           %12llu\n",
                (unsigned long long)p.cycles);
    std::printf("committed        %12llu   IPC %.3f\n",
                (unsigned long long)p.committed, p.ipc());
    std::printf("loads/stores     %12llu / %llu   (%.2f refs/cycle)\n",
                (unsigned long long)p.committedLoads,
                (unsigned long long)p.committedStores,
                double(p.committedLoads + p.committedStores) /
                    double(p.cycles));
    std::printf("branch pred      %12s   mispredicts %llu\n",
                percent(p.predictor.rate(), 1).c_str(),
                (unsigned long long)p.mispredicts);
    std::printf("rob-full stalls  %12llu   lsq-full %llu\n",
                (unsigned long long)p.robFullStalls,
                (unsigned long long)p.lsqFullStalls);

    std::printf("-- translation (%s) ----------------------------\n",
                tlb::designName(d).c_str());
    std::printf("requests         %12llu\n",
                (unsigned long long)x.requests);
    std::printf("shielded         %12llu   (%s of translations)\n",
                (unsigned long long)x.shielded,
                percent(ratio(x.shielded, x.translations), 1).c_str());
    std::printf("port conflicts   %12llu\n",
                (unsigned long long)x.noPort);
    std::printf("piggybacks       %12llu\n",
                (unsigned long long)x.piggybacks);
    std::printf("base accesses    %12llu   hits %llu\n",
                (unsigned long long)x.baseAccesses,
                (unsigned long long)x.baseHits);
    std::printf("misses (walks)   %12llu   (30 cycles each)\n",
                (unsigned long long)p.tlbWalks);
    std::printf("status writes    %12llu\n",
                (unsigned long long)x.statusWrites);

    std::printf("-- memory --------------------------------------\n");
    std::printf("D-cache          %12llu accesses, %s miss rate\n",
                (unsigned long long)p.dcache.accesses,
                percent(ratio(p.dcache.misses, p.dcache.accesses), 2)
                    .c_str());
    std::printf("I-cache          %12llu accesses, %s miss rate\n",
                (unsigned long long)p.icache.accesses,
                percent(ratio(p.icache.misses, p.icache.accesses), 2)
                    .c_str());
    std::printf("data footprint   %12llu pages (%.1f KB)\n",
                (unsigned long long)r.touchedPages,
                double(r.touchedPages) * pages / 1024.0);
    return 0;
}
