/**
 * @file
 * hbat_sweep: run an arbitrary design-space sweep from a spec file.
 *
 * Where the figure binaries bake in one experiment each, this one is
 * pure frontend: --sweep FILE (required) names a spec in the config
 * language of DESIGN.md §11, whose cross-product of design and
 * machine axes becomes the column grid. CLI --program/--scale/--seed
 * override the spec's keys; everything else (table rendering, JSON
 * report, JobPool scheduling, per-column lint) is the shared harness.
 *
 *   hbat_sweep --sweep configs/table2.conf --scale 0.05
 *   hbat_sweep --sweep configs/campaign_example.conf --json out.json
 */

#include "bench/harness.hh"
#include "common/log.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig defaults;
    defaults.supportsSweep = true;
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);
    if (cfg.sweepPath.empty())
        hbat_fatal("hbat_sweep needs --sweep FILE (see --help text "
                   "via any unknown flag, or DESIGN.md §11)");

    const bench::Sweep sweep =
        bench::runConfiguredSweep(cfg, tlb::allDesigns());
    const std::string title =
        "Design-space sweep: " + cfg.sweepPath + " (normalized IPC)";
    bench::printSweep(title, sweep);
    bench::writeSweepJson(title, sweep);
    return 0;
}
