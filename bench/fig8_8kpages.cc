/**
 * @file
 * Figure 8: relative performance with 8 KB pages instead of 4 KB
 * (Section 4.5). Multi-ported designs barely move; the multi-level,
 * pretranslation, and piggybacked designs improve because larger
 * pages extend L1-TLB reach, pretranslation lifetimes, and the
 * spatial window piggyback matches exploit.
 */

#include "bench/harness.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig defaults;
    defaults.pageBytes = 8192;
    defaults.supportsSweep = true;
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);

    const bench::Sweep sweep =
        bench::runConfiguredSweep(cfg, tlb::allDesigns());
    const std::string title =
        "Figure 8: relative performance with 8 KB pages "
        "(normalized IPC)";
    bench::printSweep(title, sweep);
    bench::writeSweepJson(title, sweep);
    return 0;
}
