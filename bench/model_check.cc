/**
 * @file
 * Section 2 model check: extract the analytical model's parameters
 * (f_MEM, f_shielded, t_stalled, M_TLB) from measured runs and report
 * the implied latency-tolerance factor f_TOL for the out-of-order and
 * in-order machines.
 *
 * The paper's qualitative claims this table quantifies:
 *  - shielding designs (M*, P8) drive f_shielded toward 1;
 *  - the out-of-order core tolerates most exposed latency (f_TOL
 *    high), the in-order core much less;
 *  - TPI_AT explains the IPC gap each design shows in Figure 5.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "common/job_pool.hh"
#include "common/stats.hh"
#include "cpu/static_code.hh"
#include "sim/at_model.hh"
#include "tlb/ideal.hh"
#include "vm/program_image.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig defaults;
    defaults.scale = 0.3;
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);

    const std::vector<tlb::Design> designs = {
        tlb::Design::T1, tlb::Design::T2, tlb::Design::I4,
        tlb::Design::M8, tlb::Design::P8, tlb::Design::PB2,
    };
    std::vector<std::string> programs =
        cfg.programs.empty()
            ? std::vector<std::string>{"xlisp", "tomcatv", "compress"}
            : cfg.programs;

    TextTable table;
    table.header({"program", "design", "issue", "f_MEM", "f_shield",
                  "t_stall", "M_TLB", "t_AT", "TPI_AT", "f_TOL"});

    // One cell per (program, issue model): each runs its ideal
    // reference plus every design, emitting rows into its own slot;
    // rows are appended to the table in the original serial order.
    std::vector<std::vector<std::vector<std::string>>> rows(
        programs.size() * 2);
    parallelFor(rows.size(), cfg.jobs, [&](size_t idx) {
        const std::string &name = programs[idx / 2];
        const bool in_order = (idx % 2) != 0;
        const kasm::Program prog =
            workloads::build(name, cfg.budget, cfg.scale);
        // This cell's seven runs share one decode and one page image.
        const auto code = std::make_shared<const cpu::StaticCode>(prog);
        const auto image = std::make_shared<const vm::ProgramImage>(
            prog, vm::PageParams(cfg.pageBytes));
        sim::SimConfig sc = bench::toSimConfig(cfg);
        sc.inOrder = in_order;

        bench::progressLine("  [" + name +
                            (in_order ? " in-order]" : " ooo]"));
        const sim::SimResult ideal = sim::simulateWithEngine(
            prog, sc,
            [](vm::PageTable &pt) {
                return std::make_unique<tlb::IdealTlb>(pt);
            },
            "ideal", code, image);

        for (tlb::Design d : designs) {
            sc.design = d;
            const sim::SimResult r =
                sim::simulate(prog, sc, code, image);
            const sim::AtModelParams p = sim::extractModel(r);
            rows[idx].push_back({
                name,
                tlb::designName(d),
                in_order ? "in" : "ooo",
                fixed(p.fMem, 2),
                fixed(p.fShielded, 2),
                fixed(p.tStalled, 2),
                fixed(p.mTlb, 3),
                fixed(sim::tAt(p), 2),
                fixed(sim::measuredTpiAt(r, ideal), 3),
                fixed(sim::impliedFtol(r, ideal), 2),
            });
        }
    });
    for (std::vector<std::vector<std::string>> &cell : rows)
        for (std::vector<std::string> &row : cell)
            table.row(std::move(row));

    std::printf("Section 2 analytical model, extracted from measured "
                "runs (scale %.2f)\n\n%s\n",
                cfg.scale, table.render().c_str());
    bench::writeTableJson(
        "Section 2 analytical model, extracted from measured runs",
        cfg, table);
    return 0;
}
