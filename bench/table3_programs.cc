/**
 * @file
 * Table 3: program execution performance on the baseline 8-way
 * out-of-order simulator (design T4): instruction/load/store counts,
 * issued and committed operations per cycle, and the conditional
 * branch prediction rate.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "common/job_pool.hh"
#include "common/stats.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, bench::ExperimentConfig{});

    TextTable table;
    table.header({"program", "insts(K)", "loads(K)", "stores(K)",
                  "inst/cyc", "(ld+st)/cyc", "br-pred", "data-KB"});

    std::vector<std::string> programs;
    if (cfg.programs.empty()) {
        for (const workloads::Workload &w : workloads::all())
            programs.push_back(w.name);
    } else {
        programs = cfg.programs;
    }

    // One independent cell per program; rows are emitted from the
    // pre-sized result vector in program order, so the table is the
    // same at any --jobs.
    std::vector<sim::SimResult> results(programs.size());
    parallelFor(programs.size(), cfg.jobs, [&](size_t p) {
        const std::string &name = programs[p];
        const kasm::Program prog =
            workloads::build(name, cfg.budget, cfg.scale);
        sim::SimConfig sc = bench::toSimConfig(cfg);
        sc.design = tlb::Design::T4;
        results[p] = sim::simulate(prog, sc);
        bench::progressLine("  [" + name + "]");
    });

    for (size_t p = 0; p < programs.size(); ++p) {
        const std::string &name = programs[p];
        const sim::SimResult &r = results[p];

        table.row({
            name,
            fixed(double(r.pipe.committed) / 1000.0, 0),
            fixed(double(r.pipe.committedLoads) / 1000.0, 0),
            fixed(double(r.pipe.committedStores) / 1000.0, 0),
            fixed(r.ipc(), 2),
            fixed(double(r.pipe.committedLoads +
                         r.pipe.committedStores) /
                      double(r.pipe.cycles),
                  2),
            percent(r.pipe.predictor.rate(), 1),
            fixed(double(r.touchedPages) * cfg.pageBytes / 1024.0, 0),
        });
    }

    std::printf("Table 3: program execution performance (baseline "
                "out-of-order model, design T4, scale %.2f)\n\n",
                cfg.scale);
    std::printf("%s\n", table.render().c_str());
    bench::writeTableJson("Table 3: program execution performance",
                          cfg, table);
    return 0;
}
