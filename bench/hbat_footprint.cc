/**
 * @file
 * hbat_footprint: static translation-footprint report.
 *
 * Runs the loop/stride abstract interpretation (verify/footprint.hh)
 * over the selected workloads and prints, per program, a
 * disassembly-annotated table of every static load/store: its access
 * pattern, stride, page span, estimated dynamic accesses, and
 * page-run length (the static piggyback opportunity). Each selected
 * design is then folded against every program: TLB reach vs the
 * estimated working set, plus same-bank collision groups under the
 * interleaved designs.
 *
 * Nothing is simulated — this is the static side of the
 * static-vs-dynamic validation harness (scripts/footprint_check.py
 * cross-checks the numbers against hbat_prof's measured pc_profile).
 *
 *   hbat_footprint                          # all workloads vs T4
 *   hbat_footprint --program compress --design I4 --design T1
 *   hbat_footprint --sweep configs/fig5.conf   # designs+pages from spec
 *   hbat_footprint --json fp.json           # machine-readable report
 *
 * Flags: --program NAME (repeatable), --design NAME (repeatable),
 * --budget I,F, --scale F, --page BYTES, --sweep FILE, --json FILE.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/build_info.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "config/config.hh"
#include "isa/isa.hh"
#include "sim/sweep_spec.hh"
#include "verify/footprint.hh"
#include "verify/verifier.hh"
#include "workloads/workloads.hh"

using namespace hbat;

namespace
{

struct Options
{
    std::vector<std::string> programs;  ///< empty = all workloads
    std::vector<std::string> designs;   ///< empty = T4
    kasm::RegBudget budget{32, 32};
    double scale = 1.0;
    unsigned pageBytes = 4096;
    std::string sweepPath;  ///< --sweep: designs/pages from a spec
    std::string jsonPath;
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--program NAME]... [--design NAME]... "
                 "[--budget I,F] [--scale F] [--page BYTES] "
                 "[--sweep FILE] [--json FILE] [--version]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--program") {
            opt.programs.push_back(next());
        } else if (arg == "--design") {
            opt.designs.push_back(next());
        } else if (arg == "--budget") {
            int ir = 0, fr = 0;
            if (std::sscanf(next(), "%d,%d", &ir, &fr) != 2)
                usage(argv[0]);
            opt.budget = kasm::RegBudget{ir, fr};
        } else if (arg == "--scale") {
            opt.scale = std::atof(next());
        } else if (arg == "--page") {
            opt.pageBytes =
                unsigned(std::strtoul(next(), nullptr, 10));
        } else if (arg == "--sweep") {
            opt.sweepPath = next();
        } else if (arg == "--json") {
            opt.jsonPath = next();
        } else if (arg == "--version") {
            std::printf("hbat %s%s (%s, %s)\n", buildinfo::kGitSha,
                        buildinfo::kGitDirty ? "-dirty" : "",
                        buildinfo::kBuildType, buildinfo::kCompiler);
            std::exit(0);
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

/** One design column to fold programs against. */
struct DesignCol
{
    std::string label;
    tlb::DesignParams params;
    unsigned pageBytes;
};

/** Disassemble the static instruction at @p pc, or "?" off-text. */
std::string
disasmAt(const kasm::Program &prog, VAddr pc)
{
    if (pc < prog.textBase || pc >= prog.textEnd() || pc % 4 != 0)
        return "?";
    isa::Inst inst;
    if (!isa::tryDecode(prog.text[(pc - prog.textBase) / 4], inst))
        return "?";
    return isa::disassemble(inst, pc);
}

std::string
hexPc(VAddr pc)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx", (unsigned long long)pc);
    return buf;
}

void
refsToJson(json::Writer &jw, const kasm::Program &prog,
           const verify::ProgramFootprint &fp)
{
    jw.key("page_bytes").value(uint64_t(fp.pageBytes));
    jw.key("text_pages").value(fp.textPages);
    jw.key("data_pages").value(fp.dataPages);
    jw.key("stack_pages").value(fp.stackPages);
    jw.key("est_pages").value(fp.estPages);
    jw.key("est_pages_exact").value(fp.estPagesExact);

    jw.key("loops").beginArray();
    for (size_t l = 0; l < fp.strides.loops.size(); ++l) {
        const verify::Loop &loop = fp.strides.loops[l];
        jw.beginObject();
        jw.key("header_pc").value(hexPc(fp.loopHeaderPcs[l]));
        jw.key("depth").value(uint64_t(loop.depth));
        jw.key("trips").value(loop.trips);
        jw.endObject();
    }
    jw.endArray();

    jw.key("refs").beginArray();
    for (const verify::RefFootprint &r : fp.refs) {
        jw.beginObject();
        jw.key("pc").value(hexPc(r.pc));
        jw.key("op").value(disasmAt(prog, r.pc));
        jw.key("store").value(r.isStore);
        jw.key("loop_depth").value(uint64_t(r.loopDepth));
        jw.key("pattern").value(verify::patternName(r.pattern));
        jw.key("stride").value(int(r.stride));
        jw.key("span_pages").value(r.spanPages);
        jw.key("est_accesses").value(r.estAccesses);
        jw.key("est_exact").value(r.estExact);
        jw.key("page_run").value(r.pageRun);
        jw.endObject();
    }
    jw.endArray();
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);

    std::vector<std::string> names = opt.programs;
    std::vector<DesignCol> cols;

    if (!opt.sweepPath.empty()) {
        verify::Report report;
        config::Config cfg;
        sim::SweepSpec spec;
        if (!config::Config::parseFile(opt.sweepPath, cfg, report) ||
            !sim::expandSweepSpec(cfg, sim::SimConfig{}, spec,
                                  report)) {
            for (const verify::Diagnostic &d : report.diags)
                std::fprintf(stderr, "%s\n", d.str().c_str());
            hbat_fatal("cannot expand sweep spec ", opt.sweepPath);
        }
        if (names.empty())
            names = spec.programs;
        for (const sim::SweepColumnSpec &col : spec.columns) {
            const tlb::DesignParams p =
                col.sim.customDesign
                    ? *col.sim.customDesign
                    : tlb::designParams(col.sim.design);
            cols.push_back(
                DesignCol{col.label, p, col.sim.pageBytes});
        }
    } else {
        std::vector<std::string> designNames = opt.designs;
        if (designNames.empty())
            designNames.push_back("T4");
        for (const std::string &dn : designNames) {
            const tlb::Design d = tlb::parseDesign(dn);
            cols.push_back(DesignCol{tlb::designName(d),
                                     tlb::designParams(d),
                                     opt.pageBytes});
        }
    }
    if (names.empty())
        for (const workloads::Workload &w : workloads::all())
            names.push_back(w.name);

    // Page sizes actually needed (per-program footprints are
    // per page size, not per design).
    std::vector<unsigned> pageSizes;
    for (const DesignCol &c : cols)
        if (std::find(pageSizes.begin(), pageSizes.end(),
                      c.pageBytes) == pageSizes.end())
            pageSizes.push_back(c.pageBytes);
    if (pageSizes.empty())
        pageSizes.push_back(opt.pageBytes);

    json::Writer jw;
    jw.beginObject();
    jw.key("experiment").value("Static translation footprint");
    jw.key("budget").value(
        detail::concat(opt.budget.intRegs, ",", opt.budget.fpRegs));
    jw.key("scale").value(opt.scale);
    jw.key("programs").beginArray();

    for (const std::string &name : names) {
        const kasm::Program prog =
            workloads::build(name, opt.budget, opt.scale);
        verify::Report progReport;
        const verify::Analysis a =
            verify::analyzeProgram(prog, progReport);

        jw.beginObject();
        jw.key("name").value(name);
        jw.key("footprints").beginArray();

        for (unsigned pageBytes : pageSizes) {
            const verify::ProgramFootprint fp =
                verify::analyzeFootprint(prog, a, pageBytes);

            std::printf("\n%s @ %u-byte pages: %zu loop(s), "
                        "%zu memory ref(s), est. working set %llu "
                        "page(s)%s (text %llu, data %llu, stack "
                        "%llu)\n",
                        name.c_str(), pageBytes,
                        fp.strides.loops.size(), fp.refs.size(),
                        (unsigned long long)fp.estPages,
                        fp.estPagesExact ? "" : "+",
                        (unsigned long long)fp.textPages,
                        (unsigned long long)fp.dataPages,
                        (unsigned long long)fp.stackPages);

            TextTable table;
            table.header({"pc", "op", "depth", "pattern", "stride",
                          "span_pages", "est_accesses", "page_run"});
            for (const verify::RefFootprint &r : fp.refs) {
                table.row(
                    {hexPc(r.pc), disasmAt(prog, r.pc),
                     std::to_string(r.loopDepth),
                     verify::patternName(r.pattern),
                     r.pattern == verify::RefPattern::Strided
                         ? std::to_string(r.stride)
                         : "-",
                     r.spanKnown ? std::to_string(r.spanPages) : "?",
                     std::to_string(r.estAccesses) +
                         (r.estExact ? "" : "+"),
                     fixed(r.pageRun, 1)});
            }
            std::printf("%s", table.render().c_str());

            verify::Report report;
            verify::lintProgramFootprint(fp, report);
            for (const DesignCol &c : cols) {
                if (c.pageBytes != pageBytes)
                    continue;
                const verify::DesignFootprint df =
                    verify::foldDesign(fp, c.params);
                std::printf("  vs %-12s reach %4u page(s): %s, "
                            "%zu bank-conflict group(s)\n",
                            c.label.c_str(), df.reachPages,
                            df.exceedsReach ? "footprint EXCEEDS reach"
                                            : "footprint fits",
                            df.conflicts.size());
                verify::lintDesignFootprint(fp, c.params, c.label,
                                            report);
            }
            report.sort();
            for (const verify::Diagnostic &d : report.diags)
                std::printf("  %s\n", d.str().c_str());

            jw.beginObject();
            refsToJson(jw, prog, fp);
            jw.key("designs").beginArray();
            for (const DesignCol &c : cols) {
                if (c.pageBytes != pageBytes)
                    continue;
                const verify::DesignFootprint df =
                    verify::foldDesign(fp, c.params);
                jw.beginObject();
                jw.key("label").value(c.label);
                jw.key("reach_pages").value(uint64_t(df.reachPages));
                jw.key("exceeds_reach").value(df.exceedsReach);
                jw.key("bank_conflicts").beginArray();
                for (const verify::BankConflict &g : df.conflicts) {
                    jw.beginObject();
                    jw.key("bank").value(uint64_t(g.bank));
                    jw.key("rate").value(g.rate);
                    jw.key("pcs").beginArray();
                    for (VAddr pc : g.pcs)
                        jw.value(hexPc(pc));
                    jw.endArray();
                    jw.endObject();
                }
                jw.endArray();
                jw.endObject();
            }
            jw.endArray();
            jw.key("diags");
            verify::reportToJson(jw, report);
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();

    if (!opt.jsonPath.empty()) {
        FILE *f = std::fopen(opt.jsonPath.c_str(), "w");
        if (!f)
            hbat_fatal("cannot write ", opt.jsonPath);
        const std::string doc = jw.str();
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
    }
    return 0;
}
