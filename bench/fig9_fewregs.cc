/**
 * @file
 * Figure 9: relative performance with few architected registers —
 * every workload is re-linked for 8 int / 8 fp registers
 * (Section 4.6). Spill/reload code sharply raises loads and stores;
 * the multi-level designs hold up (the extra stack traffic is
 * local), pretranslation suffers (spilled pointers lose their
 * attachments), and the interleaved designs drop further.
 */

#include "bench/harness.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig defaults;
    defaults.budget = kasm::RegBudget{8, 8};
    defaults.supportsSweep = true;
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);

    const bench::Sweep sweep =
        bench::runConfiguredSweep(cfg, tlb::allDesigns());
    const std::string title =
        "Figure 9: relative performance with 8 int / 8 fp registers "
        "(normalized IPC)";
    bench::printSweep(title, sweep);
    bench::writeSweepJson(title, sweep);
    return 0;
}
