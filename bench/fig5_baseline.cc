/**
 * @file
 * Figure 5: relative performance of all Table 2 translation designs
 * on the baseline machine — 8-way out-of-order issue, 4 KB pages,
 * 32 int / 32 fp architected registers. IPCs are normalized to the
 * four-ported TLB (T4); the summary row is the run-time weighted
 * average, weighted by T4 cycles.
 */

#include "bench/harness.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig defaults;
    defaults.supportsSweep = true;
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);

    const bench::Sweep sweep =
        bench::runConfiguredSweep(cfg, tlb::allDesigns());
    const std::string title =
        "Figure 5: relative performance on the baseline simulator "
        "(normalized IPC)";
    bench::printSweep(title, sweep);
    bench::writeSweepJson(title, sweep);
    return 0;
}
