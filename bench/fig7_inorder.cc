/**
 * @file
 * Figure 7: relative performance with the 8-way *in-order* issue
 * model. The reduced bandwidth demand narrows every design's gap to
 * T4 (Section 4.4): the single-ported T1 loses only a few percent,
 * and the interleaved designs roughly halve their degradation.
 */

#include "bench/harness.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig defaults;
    defaults.inOrder = true;
    defaults.supportsSweep = true;
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);

    const bench::Sweep sweep =
        bench::runConfiguredSweep(cfg, tlb::allDesigns());
    const std::string title =
        "Figure 7: relative performance with in-order issue "
        "(normalized IPC)";
    bench::printSweep(title, sweep);
    bench::writeSweepJson(title, sweep);
    return 0;
}
