/**
 * @file
 * Ablation: how much do piggyback ports buy at each real-port count?
 *
 * Sweeps 1/2/4 real ports x 0..3 piggyback ports over the full suite
 * and reports run-time weighted relative IPC (normalized to T4),
 * isolating the contribution of request combining (Section 3.4) from
 * raw port bandwidth. The paper's PB1/PB2 are the (1,3) and (2,2)
 * cells; an ideal unlimited-bandwidth TLB bounds the column.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "common/job_pool.hh"
#include "common/stats.hh"
#include "cpu/static_code.hh"
#include "tlb/ideal.hh"
#include "tlb/multiported.hh"
#include "vm/program_image.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig defaults;
    defaults.scale = 0.2;    // ablations sweep many configs
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);

    std::vector<std::string> programs;
    if (cfg.programs.empty()) {
        for (const workloads::Workload &w : workloads::all())
            programs.push_back(w.name);
    } else {
        programs = cfg.programs;
    }

    struct Variant
    {
        std::string name;
        unsigned ports;
        unsigned piggy;
    };
    std::vector<Variant> variants;
    for (unsigned ports : {1u, 2u, 4u}) {
        for (unsigned piggy : {0u, 1u, 2u, 3u}) {
            std::string vname = "T";
            vname += std::to_string(ports);
            vname += "+pb";
            vname += std::to_string(piggy);
            variants.push_back({std::move(vname), ports, piggy});
        }
    }

    TextTable table;
    {
        std::vector<std::string> head{"program", "ideal"};
        for (const Variant &v : variants)
            head.push_back(v.name);
        table.header(std::move(head));
    }

    // One cell per program (its reference, ideal, and every variant);
    // rows land in pre-sized slots and are emitted in program order.
    std::vector<double> weights(programs.size());
    std::vector<std::vector<double>> rel(programs.size());
    std::vector<std::vector<std::string>> rows(programs.size());

    parallelFor(programs.size(), cfg.jobs, [&](size_t p) {
        bench::progressLine("  [" + programs[p] + "]");
        const kasm::Program prog =
            workloads::build(programs[p], cfg.budget, cfg.scale);
        // The 14 runs of this cell share one decode and one page
        // image (cloned copy-on-write per run).
        const auto code = std::make_shared<const cpu::StaticCode>(prog);
        const auto image = std::make_shared<const vm::ProgramImage>(
            prog, vm::PageParams(cfg.pageBytes));

        sim::SimConfig sc = bench::toSimConfig(cfg);

        // Reference: T4 (as in the paper's figures).
        sc.design = tlb::Design::T4;
        const double t4 = sim::simulate(prog, sc, code, image).ipc();
        weights[p] = t4 > 0 ? 1.0 : 0.0;

        std::vector<std::string> row{programs[p]};
        const double ideal =
            sim::simulateWithEngine(
                prog, sc,
                [](vm::PageTable &pt) {
                    return std::make_unique<tlb::IdealTlb>(pt);
                },
                "ideal", code, image)
                .ipc();
        rel[p].push_back(ratio(ideal, t4));
        row.push_back(fixed(ratio(ideal, t4), 3));

        for (const Variant &v : variants) {
            const double ipc =
                sim::simulateWithEngine(
                    prog, sc,
                    [&](vm::PageTable &pt) {
                        return std::make_unique<tlb::MultiPortedTlb>(
                            pt, v.ports, v.piggy, 128, cfg.seed);
                    },
                    v.name, code, image)
                    .ipc();
            rel[p].push_back(ratio(ipc, t4));
            row.push_back(fixed(ratio(ipc, t4), 3));
        }
        rows[p] = std::move(row);
    });
    for (std::vector<std::string> &row : rows)
        table.row(std::move(row));

    std::vector<std::string> avg{"avg"};
    for (size_t c = 0; c < rel[0].size(); ++c) {
        std::vector<double> vals;
        for (size_t p = 0; p < programs.size(); ++p)
            vals.push_back(rel[p][c]);
        avg.push_back(fixed(weightedAverage(vals, weights), 3));
    }
    table.row(std::move(avg));

    std::printf("Ablation: piggyback ports vs real ports (IPC relative "
                "to T4, scale %.2f)\n\n%s\n",
                cfg.scale, table.render().c_str());
    bench::writeTableJson("Ablation: piggyback ports vs real ports",
                          cfg, table);
    return 0;
}
