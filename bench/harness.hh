/**
 * @file
 * Shared experiment harness for the figure-regeneration binaries.
 *
 * Each bench binary configures one of the paper's experiments
 * (Figures 5, 7, 8, 9 plus Table 3 and the ablations) and calls
 * runDesignSweep()/printSweep(), which reproduce the paper's
 * methodology: every program runs under every design, per-program
 * IPCs are normalized to the four-ported reference (T4), and the
 * summary row is the run-time weighted average, weighted by each
 * program's T4 run time in cycles (Section 4.3).
 *
 * Execution model: a sweep is decomposed up front into independent
 * (program, design) cells, which run on a JobPool of --jobs worker
 * threads (default $HBAT_JOBS, else the hardware concurrency). Each
 * cell writes only its own pre-sized slot, so every printed table and
 * JSON report is identical at any job count; simulate() is re-entrant
 * and seeded per run (see sim/simulator.hh), so the results
 * themselves are too. Progress lines are serialized through one
 * mutex-guarded reporter and carry per-cell thread-CPU timing.
 *
 * Scale: workloads default to their evaluation size (~1-6M dynamic
 * instructions). Pass --scale <f> or set HBAT_SCALE to shrink runs
 * for quick iteration.
 */

#ifndef HBAT_BENCH_HARNESS_HH
#define HBAT_BENCH_HARNESS_HH

#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"
#include "sim/sweep_spec.hh"

namespace hbat::bench
{

/** One experiment's machine configuration (independent of design). */
struct ExperimentConfig
{
    unsigned pageBytes = 4096;
    bool inOrder = false;
    kasm::RegBudget budget{32, 32};
    double scale = 1.0;
    uint64_t seed = 12345;
    /** Subset of workloads to run (empty = all). */
    std::vector<std::string> programs;
    /** Machine-readable report destination (--json; empty = none). */
    std::string jsonPath;
    /**
     * Simulation worker threads (--jobs). parseArgs() resolves 0 to
     * $HBAT_JOBS, else the hardware concurrency; 1 runs serially on
     * the calling thread.
     */
    unsigned jobs = 0;
    /**
     * Disable the pipeline's idle-cycle skipping (--no-skip /
     * HBAT_NO_SKIP) for A/B debugging. Reports must be identical
     * either way, apart from meta and timing fields.
     */
    bool noSkip = false;

    /// @name Observability (see DESIGN.md §10; all off by default)
    /// @{
    /**
     * Interval stat sampling (--interval-stats N): every cell's JSON
     * entry gains an "interval_stats" time-series with the per-N-cycle
     * delta of every registered stat. Identical with --no-skip.
     */
    uint64_t intervalStats = 0;

    /**
     * Per-PC translation profile (--pc-profile K): record per-static-
     * instruction translation attribution and emit the K hottest PCs
     * per cell ("pc_profile" in the JSON). 0 = off.
     */
    unsigned pcProfileK = 0;

    /**
     * O3PipeView instruction-lifecycle trace (--pipeview FILE). With
     * more than one (program, design) cell, each cell writes
     * FILE.<program>.<design> so concurrent cells never share a file.
     */
    std::string pipeviewPath;

    /**
     * Simulator self-profiling (--self-profile): per-cell host-time
     * phase timers ("self_profile" in the JSON; non-deterministic,
     * ignored by the determinism gates).
     */
    bool selfProfile = false;
    /// @}

    /// @name Sampled simulation (--sample; DESIGN.md §14)
    /// @{
    /**
     * Sampling period in instructions (--sample N): fast-forward
     * functionally and run the detailed pipeline for one warmup +
     * measurement window per N instructions. 0 = exact simulation
     * (the default, and the only mode the paper's figures use).
     */
    uint64_t samplePeriod = 0;

    /** Detailed warmup instructions per interval (--warmup N). */
    uint64_t sampleWarmup = 2000;

    /** Measured instructions per interval (--measure N). */
    uint64_t sampleMeasure = 4000;
    /// @}

    /**
     * Design-space spec file (--sweep FILE, DESIGN.md §11): replaces
     * the binary's built-in design list with the spec's expanded
     * cross-product of design and machine axes. Empty = built-in.
     */
    std::string sweepPath;

    /**
     * True when --scale / --seed appeared on the command line: an
     * explicit CLI value overrides the same key in a sweep spec
     * (otherwise the spec wins over the binary's default).
     */
    bool scaleExplicit = false;
    bool seedExplicit = false;

    /**
     * Whether this binary accepts --sweep. Set on the defaults passed
     * to parseArgs() by the binaries whose sweep axes are
     * config-replaceable (the design-sweep figures); bespoke-table
     * binaries leave it off and parseArgs rejects the flag.
     */
    bool supportsSweep = false;
};

/**
 * The simulation configuration implied by an experiment's machine
 * axes. The design is left at its default (T4); callers set it (or
 * pass an EngineFactory) per cell.
 */
sim::SimConfig toSimConfig(const ExperimentConfig &config);

/**
 * One column of the sweep grid: a fully-resolved design + machine
 * configuration. The built-in experiments make one per Table 2 enum
 * row; --sweep expands a spec's cross-product into these.
 */
struct SweepColumn
{
    /** Column label ("T4", or "T4 pageBytes=8192 intRegs=8"). */
    std::string label;

    /** Complete per-cell simulation configuration. */
    sim::SimConfig sim;

    /** Workload scale for this column's cells. */
    double scale = 1.0;

    /** Resolved spec settings, echoed into the JSON meta. */
    std::vector<std::pair<std::string, std::string>> echo;
};

/** Results of one (program, design) cell. */
struct Cell
{
    std::string program;
    std::string design;     ///< the column's label
    sim::SimResult result;
    /**
     * Thread-CPU seconds this cell's simulation took (the JSON key
     * stays "wall_seconds" for report compatibility). A cell runs
     * entirely on one worker thread, so this is invariant under
     * --jobs and cells sum without double-counting overlap.
     */
    double wallSeconds = 0.0;
};

/** A full sweep: every selected program under every column. */
struct Sweep
{
    ExperimentConfig config;
    std::vector<SweepColumn> columns;
    std::vector<std::string> programs;
    std::vector<Cell> cells;    ///< programs x columns, program-major
    /**
     * Host wall-clock (elapsed) seconds for the whole cell phase —
     * with --jobs > 1 this is less than the sum of per-cell CPU
     * seconds, never more than jobs times it.
     */
    double wallSeconds = 0.0;

    /**
     * Thread-CPU seconds spent building checkpoint trains for
     * sampled columns (the functional passes). Paid once per
     * (workload image, period) and shared by every design column, so
     * it is reported separately from the per-cell times
     * ("sampling_prep_seconds" in the JSON summary). 0 when no
     * column samples.
     */
    double samplingPrepSeconds = 0.0;

    const Cell &cell(size_t prog, size_t design) const;
};

/**
 * Parse the shared bench flags (and HBAT_SCALE / HBAT_JOBS):
 *  --scale f, --program name, --seed n, --json file, --jobs n,
 *  --trace cats (comma-separated category list, see obs/trace.hh),
 *  --interval-stats n, --pc-profile k, --pipeview file,
 *  --self-profile, --sample n, --warmup n, --measure n,
 *  --sweep file (when defaults.supportsSweep),
 *  --list-designs (print the Table 2 catalogue and exit 0), and
 *  --version (print the build stamp and exit 0).
 * The returned config always has a concrete jobs count (>= 1).
 * Unknown flags and missing values print a structured error plus the
 * usage text to stderr and exit 2.
 */
ExperimentConfig parseArgs(int argc, char **argv,
                           ExperimentConfig defaults);

/**
 * Print the design catalogue (mnemonic, description, resolved
 * DesignParams) — the --list-designs output.
 */
void printDesignCatalogue();

/**
 * Serialized progress reporter: emits "@p msg\n" to stderr under the
 * process log lock, so lines from concurrent cells never interleave.
 */
void progressLine(const std::string &msg);

/**
 * Print the build stamp (git SHA, dirty flag, build type, compiler —
 * the JSON reports' "meta" fields) to stdout: the --version flag of
 * every bench binary.
 */
void printVersion();

/**
 * Run the sweep grid: lint every column, build each distinct
 * (program, budget, scale, page-size) workload variant once, then
 * execute all (program, column) cells on config.jobs workers.
 * Deterministic at any job count. Reports per-cell progress and
 * timing to stderr.
 */
Sweep runColumnSweep(const ExperimentConfig &config,
                     const std::vector<SweepColumn> &columns);

/**
 * Run a sweep over Table 2 enum rows: one column per design, all
 * machine axes from @p config. The pre-config entry point; kept both
 * for the bespoke binaries and as the equivalence reference the
 * config-driven path is diffed against.
 */
Sweep runDesignSweep(const ExperimentConfig &config,
                     const std::vector<tlb::Design> &designs);

/**
 * The main entry point of the design-sweep binaries: run the spec
 * from --sweep when one was given (CLI --program/--scale/--seed
 * override it), else the built-in @p fallback designs.
 */
Sweep runConfiguredSweep(const ExperimentConfig &config,
                         const std::vector<tlb::Design> &fallback);

/**
 * Print the paper-style table: one row per program of IPCs normalized
 * to the first design in the sweep (T4 by convention), then the
 * run-time weighted average row.
 */
void printSweep(const std::string &title, const Sweep &sweep);

/** Print absolute IPCs instead of normalized values. */
void printSweepAbsolute(const std::string &title, const Sweep &sweep);

/**
 * Write the full sweep as JSON to sweep.config.jsonPath: the machine
 * configuration, every (program, design) cell with absolute and
 * T4-normalized IPC plus *all* registered stats of that run and its
 * wall_seconds, and the run-time weighted average summary row with
 * the sweep's total wall_seconds. No-op when jsonPath is empty.
 */
void writeSweepJson(const std::string &title, const Sweep &sweep);

/**
 * Write a rendered table as JSON to config.jsonPath — the generic
 * report for the bench binaries whose output is a bespoke table
 * rather than a design sweep (Figure 6, the ablations, Table 3...).
 * Row 0 of @p table names the columns; every later row becomes one
 * {column: cell} object. No-op when jsonPath is empty.
 */
void writeTableJson(const std::string &title,
                    const ExperimentConfig &config,
                    const TextTable &table);

} // namespace hbat::bench

#endif // HBAT_BENCH_HARNESS_HH
