/**
 * @file
 * Shared experiment harness for the figure-regeneration binaries.
 *
 * Each bench binary configures one of the paper's experiments
 * (Figures 5, 7, 8, 9 plus Table 3 and the ablations) and calls
 * runDesignSweep()/printSweep(), which reproduce the paper's
 * methodology: every program runs under every design, per-program
 * IPCs are normalized to the four-ported reference (T4), and the
 * summary row is the run-time weighted average, weighted by each
 * program's T4 run time in cycles (Section 4.3).
 *
 * Scale: workloads default to their evaluation size (~1-6M dynamic
 * instructions). Pass --scale <f> or set HBAT_SCALE to shrink runs
 * for quick iteration.
 */

#ifndef HBAT_BENCH_HARNESS_HH
#define HBAT_BENCH_HARNESS_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

namespace hbat::bench
{

/** One experiment's machine configuration (independent of design). */
struct ExperimentConfig
{
    unsigned pageBytes = 4096;
    bool inOrder = false;
    kasm::RegBudget budget{32, 32};
    double scale = 1.0;
    uint64_t seed = 12345;
    /** Subset of workloads to run (empty = all). */
    std::vector<std::string> programs;
    /** Machine-readable report destination (--json; empty = none). */
    std::string jsonPath;
};

/** Results of one (program, design) cell. */
struct Cell
{
    std::string program;
    tlb::Design design;
    sim::SimResult result;
};

/** A full sweep: every selected program under every design. */
struct Sweep
{
    ExperimentConfig config;
    std::vector<tlb::Design> designs;
    std::vector<std::string> programs;
    std::vector<Cell> cells;    ///< programs x designs, program-major

    const Cell &cell(size_t prog, size_t design) const;
};

/**
 * Parse the shared bench flags (and HBAT_SCALE):
 *  --scale f, --program name, --seed n, --json file,
 *  --trace cats (comma-separated category list, see obs/trace.hh).
 */
ExperimentConfig parseArgs(int argc, char **argv,
                           ExperimentConfig defaults);

/** Run the sweep (prints progress to stderr). */
Sweep runDesignSweep(const ExperimentConfig &config,
                     const std::vector<tlb::Design> &designs);

/**
 * Print the paper-style table: one row per program of IPCs normalized
 * to the first design in the sweep (T4 by convention), then the
 * run-time weighted average row.
 */
void printSweep(const std::string &title, const Sweep &sweep);

/** Print absolute IPCs instead of normalized values. */
void printSweepAbsolute(const std::string &title, const Sweep &sweep);

/**
 * Write the full sweep as JSON to sweep.config.jsonPath: the machine
 * configuration, every (program, design) cell with absolute and
 * T4-normalized IPC plus *all* registered stats of that run, and the
 * run-time weighted average summary row. No-op when jsonPath is empty.
 */
void writeSweepJson(const std::string &title, const Sweep &sweep);

/**
 * Write a rendered table as JSON to config.jsonPath — the generic
 * report for the bench binaries whose output is a bespoke table
 * rather than a design sweep (Figure 6, the ablations, Table 3...).
 * Row 0 of @p table names the columns; every later row becomes one
 * {column: cell} object. No-op when jsonPath is empty.
 */
void writeTableJson(const std::string &title,
                    const ExperimentConfig &config,
                    const TextTable &table);

} // namespace hbat::bench

#endif // HBAT_BENCH_HARNESS_HH
