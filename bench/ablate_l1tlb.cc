/**
 * @file
 * Ablation: multi-level L1 TLB geometry.
 *
 * Sweeps the upper-level TLB from 2 to 32 entries under both LRU and
 * random replacement, reporting shielding rate (the fraction of
 * requests the L1 absorbs — the paper's f_shielded) and run-time
 * weighted relative IPC. Section 3.3 argues the small L1 can afford
 * true LRU; this quantifies how much that choice matters.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "common/job_pool.hh"
#include "common/stats.hh"
#include "cpu/static_code.hh"
#include "tlb/multilevel.hh"
#include "vm/program_image.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;

/**
 * A multi-level engine whose L1 uses *random* replacement — not a
 * Table 2 design (the paper's L1 TLBs are LRU), implemented here so
 * the ablation can quantify how much the replacement policy of the
 * tiny upper level matters. Timing rules match MultiLevelTlb.
 */
class RandomL1MultiLevel : public tlb::TranslationEngine
{
  public:
    RandomL1MultiLevel(vm::PageTable &pt, unsigned l1_entries,
                       uint64_t seed)
        : TranslationEngine(pt),
          l1(l1_entries, tlb::Replacement::Random, seed),
          l2(128, tlb::Replacement::Random, seed + 17)
    {}

    void beginCycle(Cycle now) override
    {
        (void)now;
        l1Used = 0;
    }

    tlb::Outcome
    request(const tlb::XlateRequest &req, Cycle now) override
    {
        ++stats_.requests;
        if (l1Used >= 4) {
            ++stats_.noPort;
            return tlb::Outcome::noPort();
        }
        ++l1Used;
        if (l1.lookup(req.vpn, now)) {
            ++stats_.translations;
            ++stats_.shielded;
            const vm::RefResult rr = referencePage(req.vpn, req.write);
            if (rr.statusChanged) {
                l2NextFree = std::max(l2NextFree, now) + 1;
                ++stats_.statusWrites;
            }
            return tlb::Outcome::hit(now, rr.ppn, true);
        }
        const Cycle grant = std::max(now + 1, l2NextFree);
        l2NextFree = grant + 1;
        ++stats_.baseAccesses;
        if (l2.lookup(req.vpn, grant)) {
            ++stats_.baseHits;
            ++stats_.translations;
            l1.insert(req.vpn, now);
            const vm::RefResult rr = referencePage(req.vpn, req.write);
            return tlb::Outcome::hit(grant + 1, rr.ppn, false);
        }
        ++stats_.misses;
        return tlb::Outcome::miss(grant);
    }

    void
    fill(Vpn vpn, Cycle now) override
    {
        if (auto evicted = l2.insert(vpn, now))
            l1.invalidate(*evicted);
        l1.insert(vpn, now);
    }

  private:
    tlb::TlbArray l1;
    tlb::TlbArray l2;
    unsigned l1Used = 0;
    Cycle l2NextFree = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::ExperimentConfig defaults;
    defaults.scale = 0.15;    // ablations sweep many configs
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);

    std::vector<std::string> programs;
    if (cfg.programs.empty()) {
        for (const workloads::Workload &w : workloads::all())
            programs.push_back(w.name);
    } else {
        programs = cfg.programs;
    }

    const unsigned sizes[] = {2, 4, 8, 16, 32};

    TextTable table;
    {
        std::vector<std::string> head{"L1 config", "rel-IPC",
                                      "f_shielded"};
        table.header(std::move(head));
    }

    // The T4 reference depends only on the program, so build each
    // image and time its reference run once (the serial version redid
    // both for all 10 L1 configurations), then run the configuration
    // grid as independent cells. Aggregation walks the cells in the
    // original loop order, so the table matches at any --jobs.
    std::vector<kasm::Program> images(programs.size());
    std::vector<std::shared_ptr<const cpu::StaticCode>> codes(
        programs.size());
    std::vector<std::shared_ptr<const vm::ProgramImage>> pages(
        programs.size());
    std::vector<double> t4Ipc(programs.size());
    parallelFor(programs.size(), cfg.jobs, [&](size_t p) {
        images[p] = workloads::build(programs[p], cfg.budget,
                                     cfg.scale);
        codes[p] = std::make_shared<const cpu::StaticCode>(images[p]);
        pages[p] = std::make_shared<const vm::ProgramImage>(
            images[p], vm::PageParams(cfg.pageBytes));
        sim::SimConfig sc = bench::toSimConfig(cfg);
        sc.design = tlb::Design::T4;
        t4Ipc[p] =
            sim::simulate(images[p], sc, codes[p], pages[p]).ipc();
        bench::progressLine("  [" + programs[p] + " T4]");
    });

    struct L1Config
    {
        bool lru;
        unsigned size;
    };
    std::vector<L1Config> grid;
    for (const bool lru : {true, false})
        for (unsigned size : sizes)
            grid.push_back({lru, size});

    struct CellOut
    {
        double relIpc = 0;
        uint64_t shielded = 0;
        uint64_t requests = 0;
    };
    std::vector<CellOut> out(grid.size() * programs.size());
    parallelFor(out.size(), cfg.jobs, [&](size_t idx) {
        const L1Config &gc = grid[idx / programs.size()];
        const size_t p = idx % programs.size();
        bench::progressLine("  [" + programs[p] +
                            " l1=" + std::to_string(gc.size) +
                            (gc.lru ? " lru]" : " rand]"));
        sim::SimConfig sc = bench::toSimConfig(cfg);
        std::string engName = "M";
        engName += std::to_string(gc.size);
        const sim::SimResult r = sim::simulateWithEngine(
            images[p], sc,
            [&](vm::PageTable &pt)
                -> std::unique_ptr<tlb::TranslationEngine> {
                if (gc.lru) {
                    return std::make_unique<tlb::MultiLevelTlb>(
                        pt, gc.size, 4, 128, cfg.seed);
                }
                return std::make_unique<RandomL1MultiLevel>(
                    pt, gc.size, cfg.seed);
            },
            engName, codes[p], pages[p]);
        out[idx] = {ratio(r.ipc(), t4Ipc[p]), r.pipe.xlate.shielded,
                    r.pipe.xlate.requests};
    });

    for (size_t g = 0; g < grid.size(); ++g) {
        double ipcSum = 0, baseSum = 0;
        uint64_t shielded = 0, requests = 0;
        for (size_t p = 0; p < programs.size(); ++p) {
            const CellOut &c = out[g * programs.size() + p];
            ipcSum += c.relIpc;
            baseSum += 1.0;
            shielded += c.shielded;
            requests += c.requests;
        }
        std::string rowName = "M";
        rowName += std::to_string(grid[g].size);
        rowName += grid[g].lru ? " (LRU)" : " (random)";
        table.row({
            rowName,
            fixed(ipcSum / baseSum, 3),
            percent(ratio(shielded, requests), 1),
        });
    }

    std::printf("Ablation: L1-TLB size and replacement policy "
                "(scale %.2f)\n\n%s\n",
                cfg.scale, table.render().c_str());
    bench::writeTableJson(
        "Ablation: L1-TLB size and replacement policy", cfg, table);
    return 0;
}
