/**
 * @file
 * hbat_lint: static verification of workloads and designs.
 *
 * Builds the selected built-in workloads (all ten by default), runs
 * the static program verifier and the translation-footprint analyzer
 * over every linked image, lints all Table 2 designs plus the
 * configured machine axes, folds every program footprint against
 * every design (TLB reach, bank conflicts — compact summary on
 * stdout, full findings in the JSON report), and prints the findings.
 *
 * Exit status: 0 when nothing at warning severity or above was found
 * (info-level footprint observations never fail a run), 1 when any
 * error was found, 3 when only warnings were found, 2 on usage
 * errors. CI runs this over the full suite and gates on != 0.
 *
 *   hbat_lint                     # lint everything at 32/32 registers
 *   hbat_lint --program perl      # one workload
 *   hbat_lint --budget 8,8       # Section 4.6's register pressure
 *   hbat_lint --cfg               # dump CFG/dataflow per program
 *   hbat_lint --json lint.json    # machine-readable report
 *
 * With --sweep FILE the tool instead checks a design-space spec
 * (DESIGN.md §11) standalone: parse + expand the cross-product, lint
 * every resulting cell configuration, and report per-column findings
 * — the pre-flight for a long campaign, without simulating anything.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/build_info.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "config/config.hh"
#include "sim/sweep_spec.hh"
#include "verify/design_lint.hh"
#include "verify/footprint.hh"
#include "verify/verifier.hh"
#include "workloads/workloads.hh"

using namespace hbat;

namespace
{

struct Options
{
    std::vector<std::string> programs;  ///< empty = all
    kasm::RegBudget budget{32, 32};
    double scale = 1.0;
    bool dumpCfg = false;
    std::string jsonPath;
    std::string sweepPath;  ///< --sweep: lint a spec instead
};

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--program NAME]... [--budget I,F] "
                 "[--scale F] [--cfg] [--json FILE] [--sweep FILE] "
                 "[--version]\n",
                 argv0);
    std::exit(2);
}

Options
parse(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--program") {
            opt.programs.push_back(next());
        } else if (arg == "--budget") {
            int ir = 0, fr = 0;
            if (std::sscanf(next(), "%d,%d", &ir, &fr) != 2)
                usage(argv[0]);
            opt.budget = kasm::RegBudget{ir, fr};
        } else if (arg == "--scale") {
            opt.scale = std::atof(next());
        } else if (arg == "--cfg") {
            opt.dumpCfg = true;
        } else if (arg == "--json") {
            opt.jsonPath = next();
        } else if (arg == "--sweep") {
            opt.sweepPath = next();
        } else if (arg == "--version") {
            std::printf("hbat %s%s (%s, %s)\n", buildinfo::kGitSha,
                        buildinfo::kGitDirty ? "-dirty" : "",
                        buildinfo::kBuildType, buildinfo::kCompiler);
            std::exit(0);
        } else {
            usage(argv[0]);
        }
    }
    return opt;
}

void
printDiags(const verify::Report &report)
{
    for (const verify::Diagnostic &d : report.diags)
        std::printf("  %s\n", d.str().c_str());
}

void
writeJsonFile(const std::string &path, const json::Writer &jw)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        hbat_fatal("cannot write ", path);
    const std::string doc = jw.str();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

/** The tool's exit status: 0 clean, 1 errors, 3 warnings only. */
int
exitStatus(size_t warnings, size_t errors)
{
    if (errors)
        return 1;
    return warnings ? 3 : 0;
}

/**
 * The --sweep mode: parse + expand the spec, lint every expanded
 * cell, report per-column. Exit 0 only when the whole campaign is
 * clean at warning severity or above, mirroring the tool's normal
 * contract.
 */
int
lintSweepSpec(const Options &opt)
{
    verify::Report parseReport;
    config::Config cfg;
    sim::SweepSpec spec;
    const bool expanded =
        config::Config::parseFile(opt.sweepPath, cfg, parseReport) &&
        sim::expandSweepSpec(cfg, sim::SimConfig{}, spec, parseReport);

    size_t warnings = 0, errors = 0;
    auto tally = [&](const verify::Report &report) {
        errors += report.count(verify::Severity::Error);
        warnings += report.count(verify::Severity::Warning) -
                    report.count(verify::Severity::Error);
    };
    tally(parseReport);
    parseReport.sort();

    json::Writer jw;
    jw.beginObject();
    jw.key("sweep_spec").value(opt.sweepPath);
    jw.key("spec_diags");
    verify::reportToJson(jw, parseReport);

    std::printf("sweep spec %s: %s\n", opt.sweepPath.c_str(),
                expanded ? detail::concat(spec.columns.size(),
                                          " column(s)").c_str()
                         : "failed to expand");
    printDiags(parseReport);

    std::string perColumn;
    jw.key("columns").beginArray();
    if (expanded) {
        for (const sim::SweepColumnSpec &col : spec.columns) {
            verify::Report report;
            verify::lintConfig(col.sim, report);
            tally(report);
            report.sort();

            std::printf("column %-24s %s\n", col.label.c_str(),
                        report.diags.empty() ? "clean"
                                             : "has findings:");
            printDiags(report);
            perColumn += detail::concat(perColumn.empty() ? "" : " ",
                                        col.label, "=",
                                        report.diags.size());

            jw.beginObject();
            jw.key("label").value(col.label);
            jw.key("findings").value(uint64_t(report.diags.size()));
            jw.key("diags");
            verify::reportToJson(jw, report);
            jw.endObject();
        }
    }
    jw.endArray();
    jw.key("warnings").value(uint64_t(warnings));
    jw.key("errors").value(uint64_t(errors));
    jw.endObject();

    if (!opt.jsonPath.empty())
        writeJsonFile(opt.jsonPath, jw);

    std::printf("%zu warning(s), %zu error(s)%s%s\n", warnings,
                errors, perColumn.empty() ? "" : "; findings/column: ",
                perColumn.c_str());
    return exitStatus(warnings, errors);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parse(argc, argv);
    if (!opt.sweepPath.empty())
        return lintSweepSpec(opt);

    std::vector<std::string> names = opt.programs;
    if (names.empty())
        for (const workloads::Workload &w : workloads::all())
            names.push_back(w.name);

    json::Writer jw;
    jw.beginObject();
    jw.key("programs").beginArray();

    size_t warnings = 0, errors = 0;
    auto tally = [&](const verify::Report &report) {
        errors += report.count(verify::Severity::Error);
        warnings += report.count(verify::Severity::Warning) -
                    report.count(verify::Severity::Error);
    };

    // Per-program footprints, kept for the design fold below.
    constexpr unsigned kPageBytes = 4096;
    std::vector<verify::ProgramFootprint> footprints;

    for (const std::string &name : names) {
        const kasm::Program prog =
            workloads::build(name, opt.budget, opt.scale);

        verify::Report report;
        const verify::Analysis a =
            verify::analyzeProgram(prog, report);
        footprints.push_back(
            verify::analyzeFootprint(prog, a, kPageBytes));
        verify::lintProgramFootprint(footprints.back(), report);
        tally(report);
        report.sort();

        std::printf("%-12s %6zu insts %5zu blocks  %s\n", name.c_str(),
                    a.cfg.size(), a.cfg.blocks.size(),
                    report.diags.empty()
                        ? "clean"
                        : detail::concat(report.diags.size(),
                                         " finding(s)").c_str());
        printDiags(report);
        if (opt.dumpCfg)
            std::fputs(verify::dumpAnalysis(a).c_str(), stdout);

        jw.beginObject();
        jw.key("name").value(name);
        jw.key("insts").value(uint64_t(a.cfg.size()));
        jw.key("blocks").value(uint64_t(a.cfg.blocks.size()));
        jw.key("est_pages").value(footprints.back().estPages);
        jw.key("est_pages_exact")
            .value(footprints.back().estPagesExact);
        jw.key("diags");
        verify::reportToJson(jw, report);
        jw.endObject();
    }
    jw.endArray();

    // Design catalogue + configured machine axes.
    jw.key("designs").beginArray();
    for (tlb::Design d : tlb::allDesigns()) {
        verify::Report report;
        verify::lintDesign(d, report);
        tally(report);
        report.sort();

        std::printf("design %-6s %s\n", tlb::designName(d).c_str(),
                    report.diags.empty() ? "clean"
                                         : "has findings:");
        printDiags(report);

        jw.beginObject();
        jw.key("name").value(tlb::designName(d));
        jw.key("diags");
        verify::reportToJson(jw, report);
        jw.endObject();
    }
    jw.endArray();

    // Program footprints folded against every design: one compact
    // summary line per program on stdout (the cross-product would
    // flood the terminal), full findings in the JSON report.
    jw.key("footprints").beginArray();
    for (size_t p = 0; p < names.size(); ++p) {
        const verify::ProgramFootprint &fp = footprints[p];
        size_t exceeds = 0, conflictGroups = 0;
        jw.beginObject();
        jw.key("program").value(names[p]);
        jw.key("designs").beginArray();
        for (tlb::Design d : tlb::allDesigns()) {
            const tlb::DesignParams params = tlb::designParams(d);
            verify::Report report;
            verify::lintDesignFootprint(fp, params,
                                        tlb::designName(d), report);
            tally(report);
            report.sort();
            const verify::DesignFootprint df =
                verify::foldDesign(fp, params);
            exceeds += df.exceedsReach ? 1 : 0;
            conflictGroups += df.conflicts.size();

            jw.beginObject();
            jw.key("design").value(tlb::designName(d));
            jw.key("exceeds_reach").value(df.exceedsReach);
            jw.key("bank_conflicts")
                .value(uint64_t(df.conflicts.size()));
            jw.key("diags");
            verify::reportToJson(jw, report);
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();

        std::printf("footprint %-12s est %llu page(s)%s: exceeds "
                    "reach of %zu/%zu design(s), %zu bank-conflict "
                    "group(s)\n",
                    names[p].c_str(),
                    (unsigned long long)fp.estPages,
                    fp.estPagesExact ? "" : "+", exceeds,
                    tlb::allDesigns().size(), conflictGroups);
    }
    jw.endArray();

    {
        sim::SimConfig sc;
        sc.budget = opt.budget;
        verify::Report report;
        verify::lintConfig(sc, report);
        tally(report);
        report.sort();
        if (!report.diags.empty()) {
            std::printf("configuration:\n");
            printDiags(report);
        }
        jw.key("config");
        verify::reportToJson(jw, report);
    }

    jw.key("warnings").value(uint64_t(warnings));
    jw.key("errors").value(uint64_t(errors));
    jw.endObject();

    if (!opt.jsonPath.empty())
        writeJsonFile(opt.jsonPath, jw);

    std::printf("%zu warning(s), %zu error(s)\n", warnings, errors);
    return exitStatus(warnings, errors);
}
