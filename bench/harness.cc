#include "bench/harness.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include <unistd.h>

#include <memory>

#include "common/build_info.hh"
#include "common/job_pool.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "obs/interval.hh"
#include "obs/pipeview.hh"
#include "obs/self_profile.hh"
#include "obs/trace.hh"
#include "sim/sampling.hh"
#include "verify/design_lint.hh"
#include "verify/footprint.hh"
#include "workloads/workloads.hh"

namespace hbat::bench
{

namespace
{

using SteadyTime = std::chrono::steady_clock::time_point;

SteadyTime
now()
{
    return std::chrono::steady_clock::now();
}

double
secondsSince(SteadyTime start)
{
    return std::chrono::duration<double>(now() - start).count();
}

/**
 * CPU time consumed by the calling thread. Cells are timed with this
 * rather than wall clock: a cell runs entirely on one worker, so its
 * cost reads the same whether the sweep ran at --jobs 1 or --jobs 8,
 * and summing cells never double-counts overlapped execution.
 */
double
threadCpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

} // namespace

const Cell &
Sweep::cell(size_t prog, size_t design) const
{
    return cells[prog * columns.size() + design];
}

sim::SimConfig
toSimConfig(const ExperimentConfig &config)
{
    sim::SimConfig sc;
    sc.pageBytes = config.pageBytes;
    sc.inOrder = config.inOrder;
    sc.budget = config.budget;
    sc.seed = config.seed;
    sc.idleSkip = !config.noSkip;
    sc.intervalCycles = config.intervalStats;
    sc.pcProfile = config.pcProfileK != 0;
    sc.selfProfile = config.selfProfile;
    sc.samplePeriodInsts = config.samplePeriod;
    sc.sampleWarmupInsts = config.sampleWarmup;
    sc.sampleMeasureInsts = config.sampleMeasure;
    return sc;
}

void
printVersion()
{
    std::printf("hbat %s%s (%s, %s)\n", buildinfo::kGitSha,
                buildinfo::kGitDirty ? "-dirty" : "",
                buildinfo::kBuildType, buildinfo::kCompiler);
}

void
printDesignCatalogue()
{
    std::printf("Table 2 design catalogue (configs/table2.conf):\n\n");
    for (tlb::Design d : tlb::allDesigns()) {
        std::printf("  %-6s %s\n", tlb::designName(d).c_str(),
                    tlb::designDescription(d).c_str());
        std::printf("         %s\n",
                    tlb::paramsSummary(tlb::designParams(d)).c_str());
    }
}

namespace
{

/** One recognized command-line flag. */
struct FlagSpec
{
    const char *name;
    const char *metavar;    ///< nullptr = takes no value
    const char *help;
    bool needsSweep = false;    ///< only when defaults.supportsSweep
};

constexpr FlagSpec kFlags[] = {
    {"--scale", "f", "workload scale factor (default $HBAT_SCALE or 1)"},
    {"--program", "name", "run this workload (repeatable; default all)"},
    {"--seed", "n", "seed for randomized structures"},
    {"--json", "file", "write the machine-readable report here"},
    {"--jobs", "n", "simulation worker threads (default $HBAT_JOBS)"},
    {"--no-skip", nullptr, "disable idle-cycle skipping (A/B debug)"},
    {"--trace", "cats", "enable trace categories (comma-separated)"},
    {"--interval-stats", "n", "sample every stat each n cycles"},
    {"--pc-profile", "k", "record the k hottest PCs per cell"},
    {"--pipeview", "file", "write O3PipeView lifecycle traces here"},
    {"--self-profile", nullptr, "accumulate host-time phase timers"},
    {"--sample", "n",
     "sampled simulation: one detailed interval per n instructions"},
    {"--warmup", "n", "detailed warmup per sampled interval"},
    {"--measure", "n", "measured instructions per sampled interval"},
    {"--sweep", "file", "run this design-space spec (DESIGN.md §11)",
     true},
    {"--list-designs", nullptr,
     "print the design catalogue and exit"},
    {"--version", nullptr, "print the build stamp and exit"},
};

std::string
usageText(const char *argv0, bool supportsSweep)
{
    std::string u = detail::concat("usage: ", argv0, " [flags]\n");
    for (const FlagSpec &f : kFlags) {
        if (f.needsSweep && !supportsSweep)
            continue;
        std::string head = f.name;
        if (f.metavar != nullptr)
            head += detail::concat(" <", f.metavar, ">");
        char line[160];
        std::snprintf(line, sizeof(line), "  %-22s %s\n", head.c_str(),
                      f.help);
        u += line;
    }
    return u;
}

/** Levenshtein distance, for "did you mean" suggestions. */
size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<size_t> row(b.size() + 1);
    for (size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
        size_t diag = row[0];
        row[0] = i;
        for (size_t j = 1; j <= b.size(); ++j) {
            const size_t next = std::min(
                {row[j] + 1, row[j - 1] + 1,
                 diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
            diag = row[j];
            row[j] = next;
        }
    }
    return row[b.size()];
}

[[noreturn]] void
argError(const char *argv0, bool supportsSweep, const std::string &msg)
{
    std::fprintf(stderr, "error: %s\n%s", msg.c_str(),
                 usageText(argv0, supportsSweep).c_str());
    std::exit(2);
}

} // namespace

ExperimentConfig
parseArgs(int argc, char **argv, ExperimentConfig defaults)
{
    ExperimentConfig cfg = defaults;
    if (const char *env = std::getenv("HBAT_SCALE"))
        cfg.scale = std::atof(env);
    if (const char *env = std::getenv("HBAT_NO_SKIP"))
        cfg.noSkip = env[0] != '\0' && env[0] != '0';

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];

        // Resolve the flag against the table first so a typo'd
        // --sweeep errors out instead of silently running the default
        // experiment.
        const FlagSpec *spec = nullptr;
        for (const FlagSpec &f : kFlags) {
            if (arg == f.name && (!f.needsSweep || cfg.supportsSweep))
                spec = &f;
        }
        if (spec == nullptr) {
            // A sweep-only flag on a bespoke-table binary gets its
            // own message, not a did-you-mean for something else.
            for (const FlagSpec &f : kFlags) {
                if (arg == f.name) {
                    argError(argv[0], cfg.supportsSweep,
                             detail::concat(
                                 "flag '", arg, "' is not supported "
                                 "by this binary (its design list is "
                                 "not config-replaceable)"));
                }
            }
            std::string msg =
                detail::concat("unknown flag '", arg, "'");
            const FlagSpec *best = nullptr;
            size_t bestDist = 3;    // suggest within edit distance 2
            for (const FlagSpec &f : kFlags) {
                if (f.needsSweep && !cfg.supportsSweep)
                    continue;
                const size_t dist = editDistance(arg, f.name);
                if (dist < bestDist) {
                    bestDist = dist;
                    best = &f;
                }
            }
            if (best != nullptr)
                msg += detail::concat(" (did you mean '", best->name,
                                      "'?)");
            argError(argv[0], cfg.supportsSweep, msg);
        }

        const char *value = nullptr;
        if (spec->metavar != nullptr) {
            if (i + 1 >= argc) {
                argError(argv[0], cfg.supportsSweep,
                         detail::concat("flag '", arg, "' needs a <",
                                        spec->metavar, "> value"));
            }
            value = argv[++i];
        }

        if (arg == "--scale") {
            cfg.scale = std::atof(value);
            cfg.scaleExplicit = true;
        } else if (arg == "--program") {
            cfg.programs.push_back(value);
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(value, nullptr, 0);
            cfg.seedExplicit = true;
        } else if (arg == "--json") {
            cfg.jsonPath = value;
        } else if (arg == "--jobs") {
            cfg.jobs = unsigned(std::strtoul(value, nullptr, 10));
            if (cfg.jobs == 0)
                hbat_fatal("--jobs wants a positive integer");
        } else if (arg == "--no-skip") {
            cfg.noSkip = true;
        } else if (arg == "--trace") {
            obs::setTraceMask(obs::parseTraceCats(value));
        } else if (arg == "--interval-stats") {
            cfg.intervalStats = std::strtoull(value, nullptr, 10);
            if (cfg.intervalStats == 0)
                hbat_fatal("--interval-stats wants a positive cycle "
                           "count");
        } else if (arg == "--pc-profile") {
            cfg.pcProfileK =
                unsigned(std::strtoul(value, nullptr, 10));
            if (cfg.pcProfileK == 0)
                hbat_fatal("--pc-profile wants a positive top-K count");
        } else if (arg == "--pipeview") {
            cfg.pipeviewPath = value;
        } else if (arg == "--self-profile") {
            cfg.selfProfile = true;
        } else if (arg == "--sample") {
            cfg.samplePeriod = std::strtoull(value, nullptr, 10);
            if (cfg.samplePeriod == 0)
                hbat_fatal("--sample wants a positive instruction "
                           "count");
        } else if (arg == "--warmup") {
            cfg.sampleWarmup = std::strtoull(value, nullptr, 10);
        } else if (arg == "--measure") {
            cfg.sampleMeasure = std::strtoull(value, nullptr, 10);
            if (cfg.sampleMeasure == 0)
                hbat_fatal("--measure wants a positive instruction "
                           "count");
        } else if (arg == "--sweep") {
            cfg.sweepPath = value;
        } else if (arg == "--list-designs") {
            printDesignCatalogue();
            std::exit(0);
        } else if (arg == "--version") {
            printVersion();
            std::exit(0);
        }
    }
    hbat_assert(cfg.scale > 0.0, "scale must be positive");
    if (cfg.samplePeriod != 0 &&
        (cfg.intervalStats != 0 || cfg.pcProfileK != 0 ||
         !cfg.pipeviewPath.empty())) {
        argError(argv[0], cfg.supportsSweep,
                 "--sample reconstructs whole-run estimates; the "
                 "per-cycle observability flags (--interval-stats, "
                 "--pc-profile, --pipeview) require exact simulation");
    }
    if (cfg.jobs == 0)
        cfg.jobs = JobPool::defaultWorkers();
    return cfg;
}

void
progressLine(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "%s\n", msg.c_str());
}

namespace
{

/**
 * Pipeview files are named after the cell's column label; labels from
 * sweep specs (and "I4/PB") carry separators that cannot appear in a
 * file name component.
 */
std::string
sanitizeForPath(const std::string &label)
{
    std::string out;
    for (char c : label) {
        const bool keep = (c >= 'a' && c <= 'z') ||
                          (c >= 'A' && c <= 'Z') ||
                          (c >= '0' && c <= '9') || c == '.' ||
                          c == '-' || c == '_';
        out += keep ? c : '_';
    }
    return out;
}

} // namespace

Sweep
runColumnSweep(const ExperimentConfig &config,
               const std::vector<SweepColumn> &columns)
{
    Sweep sweep;
    sweep.config = config;
    sweep.columns = columns;

    if (config.programs.empty()) {
        for (const workloads::Workload &w : workloads::all())
            sweep.programs.push_back(w.name);
    } else {
        sweep.programs = config.programs;
    }

    const unsigned jobs =
        config.jobs ? config.jobs : JobPool::defaultWorkers();
    sweep.config.jobs = jobs;   // report the resolved count, not 0
    const size_t nProgs = sweep.programs.size();
    const size_t nCols = columns.size();
    hbat_assert(nCols > 0, "sweep needs at least one column");

    // Reject structurally-invalid experiment setups before burning
    // cycles: errors abort, warnings print and proceed. Every column
    // is checked — a spec axis must not discover its bad value only
    // when its cell is reached.
    {
        verify::Report report;
        for (const SweepColumn &col : columns) {
            verify::Report colReport;
            verify::lintConfig(col.sim, colReport);
            for (verify::Diagnostic &diag : colReport.diags) {
                diag.message = detail::concat("[", col.label, "] ",
                                              diag.message);
                report.diags.push_back(std::move(diag));
            }
        }
        for (const verify::Diagnostic &diag : report.diags) {
            if (diag.severity >= verify::Severity::Warning)
                hbat_warn("design lint: ", diag.str());
        }
        if (!report.clean(verify::Severity::Error))
            hbat_fatal("design lint found errors; aborting sweep");
    }

    // One link, one decode, and one page image per distinct workload
    // variant serves every column that shares it; all are immutable
    // once built, so cells share them freely (pages clone
    // copy-on-write per cell). Built-in experiments have exactly one
    // variant; spec axes over budget/scale/pageBytes multiply them.
    struct BuildVariant       // one workloads::build() product
    {
        kasm::RegBudget budget;
        double scale;
    };
    struct ImageVariant       // one paging of a build variant
    {
        size_t build;
        unsigned pageBytes;
    };
    std::vector<BuildVariant> builds;
    std::vector<ImageVariant> imageVariants;
    std::vector<size_t> colImage(nCols);    // column -> image variant
    for (size_t c = 0; c < nCols; ++c) {
        const SweepColumn &col = columns[c];
        size_t b = 0;
        for (; b < builds.size(); ++b) {
            if (builds[b].budget.intRegs == col.sim.budget.intRegs &&
                builds[b].budget.fpRegs == col.sim.budget.fpRegs &&
                builds[b].scale == col.scale)
                break;
        }
        if (b == builds.size())
            builds.push_back(BuildVariant{col.sim.budget, col.scale});
        size_t iv = 0;
        for (; iv < imageVariants.size(); ++iv) {
            if (imageVariants[iv].build == b &&
                imageVariants[iv].pageBytes == col.sim.pageBytes)
                break;
        }
        if (iv == imageVariants.size())
            imageVariants.push_back(
                ImageVariant{b, col.sim.pageBytes});
        colImage[c] = iv;
    }

    // images/codes indexed [build][program]; pages [imageVariant][program].
    std::vector<std::vector<kasm::Program>> images(
        builds.size(), std::vector<kasm::Program>(nProgs));
    std::vector<std::vector<std::shared_ptr<const cpu::StaticCode>>>
        codes(builds.size(),
              std::vector<std::shared_ptr<const cpu::StaticCode>>(
                  nProgs));
    std::vector<
        std::vector<std::shared_ptr<const vm::ProgramImage>>>
        pages(imageVariants.size(),
              std::vector<std::shared_ptr<const vm::ProgramImage>>(
                  nProgs));
    parallelFor(builds.size() * nProgs, jobs, [&](size_t idx) {
        const size_t b = idx / nProgs;
        const size_t p = idx % nProgs;
        images[b][p] = workloads::build(
            sweep.programs[p], builds[b].budget, builds[b].scale);
        codes[b][p] =
            std::make_shared<const cpu::StaticCode>(images[b][p]);
    });
    parallelFor(imageVariants.size() * nProgs, jobs, [&](size_t idx) {
        const size_t iv = idx / nProgs;
        const size_t p = idx % nProgs;
        pages[iv][p] = std::make_shared<const vm::ProgramImage>(
            images[imageVariants[iv].build][p],
            vm::PageParams(imageVariants[iv].pageBytes));
    });

    // Static footprint lint over the same images the cells will run:
    // each (image variant, program) footprint folded against every
    // column it feeds. Findings are informational (a workload whose
    // working set exceeds a design's reach is exactly what some cells
    // measure), so the sweep reports one compact line per image
    // variant and never aborts here.
    {
        std::vector<std::vector<verify::ProgramFootprint>> fps(
            imageVariants.size(),
            std::vector<verify::ProgramFootprint>(nProgs));
        parallelFor(imageVariants.size() * nProgs, jobs,
                    [&](size_t idx) {
            const size_t iv = idx / nProgs;
            const size_t p = idx % nProgs;
            const kasm::Program &prog =
                images[imageVariants[iv].build][p];
            verify::Report scratch;
            const verify::Analysis a =
                verify::analyzeProgram(prog, scratch);
            fps[iv][p] = verify::analyzeFootprint(
                prog, a, imageVariants[iv].pageBytes);
        });
        for (size_t iv = 0; iv < imageVariants.size(); ++iv) {
            size_t findings = 0, exceeds = 0;
            for (size_t p = 0; p < nProgs; ++p) {
                verify::Report report;
                verify::lintProgramFootprint(fps[iv][p], report);
                for (size_t c = 0; c < nCols; ++c) {
                    if (colImage[c] != iv)
                        continue;
                    const SweepColumn &col = columns[c];
                    const tlb::DesignParams params =
                        col.sim.customDesign
                            ? *col.sim.customDesign
                            : tlb::designParams(col.sim.design);
                    verify::lintDesignFootprint(fps[iv][p], params,
                                                col.label, report);
                    exceeds += verify::foldDesign(fps[iv][p], params)
                                   .exceedsReach
                                   ? 1
                                   : 0;
                }
                findings += report.diags.size();
                for (const verify::Diagnostic &diag : report.diags)
                    if (diag.severity >= verify::Severity::Warning)
                        hbat_warn("footprint lint: ", diag.str());
            }
            progressLine(detail::concat(
                "footprint lint @", imageVariants[iv].pageBytes,
                "-byte pages: ", findings, " finding(s), ", exceeds,
                "/", nProgs * nCols,
                " (program, column) cell(s) exceed TLB reach"));
        }
    }

    // Checkpoint trains for sampled columns (DESIGN.md §14): a train
    // depends only on (workload image, sampling period) — never on
    // the translation design — so the functional fast-forward pass is
    // paid once per program and shared by every design column that
    // samples with the same period.
    struct CkVariant
    {
        size_t iv;          ///< image variant index
        uint64_t period;    ///< samplePeriodInsts
        const sim::SimConfig *cfg;  ///< a representative column's cfg
    };
    std::vector<CkVariant> ckVariants;
    std::vector<size_t> colCk(nCols, SIZE_MAX);
    for (size_t c = 0; c < nCols; ++c) {
        const uint64_t period = columns[c].sim.samplePeriodInsts;
        if (period == 0)
            continue;
        size_t k = 0;
        for (; k < ckVariants.size(); ++k) {
            if (ckVariants[k].iv == colImage[c] &&
                ckVariants[k].period == period)
                break;
        }
        if (k == ckVariants.size())
            ckVariants.push_back(
                CkVariant{colImage[c], period, &columns[c].sim});
        colCk[c] = k;
    }
    std::vector<
        std::vector<std::shared_ptr<const sim::CheckpointSet>>>
        ckSets(ckVariants.size(),
               std::vector<std::shared_ptr<const sim::CheckpointSet>>(
                   nProgs));
    if (!ckVariants.empty()) {
        parallelFor(ckVariants.size() * nProgs, jobs, [&](size_t idx) {
            const size_t k = idx / nProgs;
            const size_t p = idx % nProgs;
            const size_t iv = ckVariants[k].iv;
            const size_t b = imageVariants[iv].build;
            ckSets[k][p] = sim::buildCheckpoints(
                images[b][p], *ckVariants[k].cfg, codes[b][p],
                pages[iv][p]);
        });
        size_t points = 0;
        for (const auto &perProg : ckSets) {
            for (const auto &set : perProg) {
                sweep.samplingPrepSeconds += set->cpuSeconds;
                points += set->points.size();
            }
        }
        progressLine(detail::concat(
            "checkpoints: ", points, " across ",
            ckVariants.size() * nProgs, " functional pass(es), ",
            fixed(sweep.samplingPrepSeconds, 2), "s CPU"));
    }

    // Every (program, column) cell is one independent job writing its
    // own pre-sized slot, which keeps cell order — and therefore every
    // table and report — identical at any job count.
    sweep.cells.resize(nProgs * nCols);
    const SteadyTime sweepStart = now();
    parallelFor(sweep.cells.size(), jobs, [&](size_t idx) {
        const size_t p = idx / nCols;
        const size_t c = idx % nCols;
        const SweepColumn &col = columns[c];
        const size_t iv = colImage[c];
        const size_t b = imageVariants[iv].build;
        Cell &cell = sweep.cells[idx];
        cell.program = sweep.programs[p];
        cell.design = col.label;

        const double cellStart = threadCpuSeconds();
        sim::SimConfig sc = col.sim;

        // One pipeview file per cell: concurrent cells cannot share a
        // writer, and a single-cell run keeps the plain path.
        std::unique_ptr<obs::PipeviewWriter> pview;
        if (!config.pipeviewPath.empty()) {
            std::string path = config.pipeviewPath;
            if (nProgs * nCols > 1)
                path += std::string(".") + cell.program + "." +
                        sanitizeForPath(col.label);
            pview = std::make_unique<obs::PipeviewWriter>(path);
            sc.pipeview = pview.get();
        }

        if (colCk[c] != SIZE_MAX) {
            // Intervals of one cell only fan out when the sweep has
            // nothing else to keep the workers busy.
            sc.sampleJobs = (nProgs * nCols == 1) ? jobs : 1;
            cell.result =
                sim::simulateSampled(images[b][p], sc, codes[b][p],
                                     pages[iv][p], ckSets[colCk[c]][p]);
        } else {
            cell.result = sim::simulate(images[b][p], sc, codes[b][p],
                                        pages[iv][p]);
        }
        cell.wallSeconds = threadCpuSeconds() - cellStart;
        if (sc.sampleJobs > 1) {
            // The intervals ran on pool threads; this thread's CPU
            // clock never saw them.
            cell.wallSeconds +=
                cell.result.sampling.intervalCpuSeconds;
        }

        if (cell.result.sampling.enabled) {
            const sim::SamplingInfo &si = cell.result.sampling;
            const double relCi =
                si.ipc > 0 ? 100.0 * si.ipcCi95 / si.ipc : 0.0;
            progressLine(detail::concat(
                "  [", cell.program, " / ", cell.design, "]  ",
                fixed(cell.wallSeconds, 2), "s  sampled n=",
                si.intervals, "  ipc ", fixed(si.ipc, 3), " ±",
                fixed(relCi, 1), "%"));
        } else {
            const cpu::PipeStats &ps = cell.result.pipe;
            const double skipPct =
                ps.cycles ? 100.0 * double(ps.skippedCycles) /
                                double(ps.cycles)
                          : 0.0;
            progressLine(detail::concat(
                "  [", cell.program, " / ", cell.design, "]  ",
                fixed(cell.wallSeconds, 2), "s  skip ",
                fixed(skipPct, 0), "%"));
        }
    });
    sweep.wallSeconds = secondsSince(sweepStart);
    return sweep;
}

Sweep
runDesignSweep(const ExperimentConfig &config,
               const std::vector<tlb::Design> &designs)
{
    std::vector<SweepColumn> columns;
    for (tlb::Design d : designs) {
        SweepColumn col;
        col.label = tlb::designName(d);
        col.sim = toSimConfig(config);
        col.sim.design = d;
        col.scale = config.scale;
        columns.push_back(std::move(col));
    }
    return runColumnSweep(config, columns);
}

Sweep
runConfiguredSweep(const ExperimentConfig &config,
                   const std::vector<tlb::Design> &fallback)
{
    if (config.sweepPath.empty())
        return runDesignSweep(config, fallback);

    verify::Report report;
    config::Config cfg;
    sim::SweepSpec spec;
    if (!config::Config::parseFile(config.sweepPath, cfg, report) ||
        !sim::expandSweepSpec(cfg, toSimConfig(config), spec,
                              report)) {
        for (const verify::Diagnostic &diag : report.diags)
            progressLine(detail::concat("sweep spec: ", diag.str()));
        hbat_fatal("cannot load sweep spec '", config.sweepPath, "'");
    }

    // CLI --program/--scale/--seed override the spec; otherwise the
    // spec's keys override the binary's defaults.
    ExperimentConfig ec = config;
    if (ec.programs.empty())
        ec.programs = spec.programs;

    std::vector<SweepColumn> columns;
    for (sim::SweepColumnSpec &cs : spec.columns) {
        SweepColumn col;
        col.label = cs.label;
        col.sim = std::move(cs.sim);
        col.scale = (cs.hasScale && !config.scaleExplicit)
                        ? cs.scale
                        : config.scale;
        if (config.seedExplicit)
            col.sim.seed = config.seed;
        col.echo = std::move(cs.echo);
        columns.push_back(std::move(col));
    }
    progressLine(detail::concat("sweep spec '", config.sweepPath,
                                "': ", columns.size(), " column(s)"));
    return runColumnSweep(ec, columns);
}

namespace
{

void
printTable(const std::string &title, const Sweep &sweep,
           bool normalized)
{
    TextTable table;
    std::vector<std::string> head{"program"};
    for (const SweepColumn &col : sweep.columns)
        head.push_back(col.label);
    table.header(std::move(head));

    for (size_t p = 0; p < sweep.programs.size(); ++p) {
        std::vector<std::string> row{sweep.programs[p]};
        const double base = sweep.cell(p, 0).result.ipc();
        for (size_t d = 0; d < sweep.columns.size(); ++d) {
            const double ipc = sweep.cell(p, d).result.ipc();
            row.push_back(normalized ? fixed(ratio(ipc, base), 3)
                                     : fixed(ipc, 3));
        }
        table.row(std::move(row));
    }

    // Run-time weighted average (weights: cycles under the first
    // design, which the experiments keep as T4 per the paper).
    std::vector<std::string> avg{"RTW-avg"};
    for (size_t d = 0; d < sweep.columns.size(); ++d) {
        std::vector<double> vals, weights;
        for (size_t p = 0; p < sweep.programs.size(); ++p) {
            const double base = sweep.cell(p, 0).result.ipc();
            const double ipc = sweep.cell(p, d).result.ipc();
            vals.push_back(normalized ? ratio(ipc, base) : ipc);
            weights.push_back(double(sweep.cell(p, 0).result.cycles()));
        }
        avg.push_back(fixed(weightedAverage(vals, weights), 3));
    }
    table.row(std::move(avg));

    std::printf("%s\n", title.c_str());
    std::printf("(scale %.2f, %s issue, %u-byte pages, %d int/%d fp "
                "registers)\n\n",
                sweep.config.scale,
                sweep.config.inOrder ? "in-order" : "out-of-order",
                sweep.config.pageBytes, sweep.config.budget.intRegs,
                sweep.config.budget.fpRegs);
    std::printf("%s\n", table.render().c_str());
}

} // namespace

void
printSweep(const std::string &title, const Sweep &sweep)
{
    printTable(title, sweep, true);
}

void
printSweepAbsolute(const std::string &title, const Sweep &sweep)
{
    printTable(title, sweep, false);
}

namespace
{

/** Emit one snapshotted stat as a "name": value member. */
void
writeStat(json::Writer &w, const obs::StatValue &sv)
{
    w.key(sv.name);
    switch (sv.kind) {
      case obs::StatKind::Scalar:
      case obs::StatKind::Formula:
        w.value(sv.value);
        break;
      case obs::StatKind::Vector:
        w.beginObject();
        for (size_t i = 0; i < sv.values.size(); ++i)
            w.key(sv.labels[i]).value(sv.values[i]);
        w.endObject();
        break;
      case obs::StatKind::Histogram:
        w.beginObject();
        w.key("samples").value(sv.samples);
        w.key("mean").value(sv.mean);
        w.key("buckets").beginArray();
        for (double b : sv.values)
            w.value(b);
        w.endArray();
        w.endObject();
        break;
    }
}

/** 0x-prefixed hex rendering of an address (JSON keys/values). */
std::string
hexAddr(VAddr a)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(a));
    return buf;
}

/**
 * The per-cell observability sections (present only when their
 * feature was requested, so default reports keep their exact shape).
 */
/**
 * The per-cell "sampling" block: how the cell's estimates were
 * formed. Everything except cpu_seconds is deterministic for a given
 * (program, config) — the determinism gates compare it strictly.
 */
void
writeCellSampling(json::Writer &w, const sim::SamplingInfo &si)
{
    if (!si.enabled)
        return;
    w.key("sampling").beginObject();
    w.key("period").value(si.periodInsts);
    w.key("warmup").value(si.warmupInsts);
    w.key("measure").value(si.measureInsts);
    w.key("intervals").value(si.intervals);
    w.key("total_insts").value(si.totalInsts);
    w.key("measured_insts").value(si.measuredInsts);
    w.key("measured_cycles").value(si.measuredCycles);
    w.key("ipc").value(si.ipc);
    w.key("ipc_ci95").value(si.ipcCi95);
    // Host-side cost of the detailed intervals (the shared functional
    // pass is summary-level "sampling_prep_seconds").
    w.key("cpu_seconds").value(si.intervalCpuSeconds);
    w.key("stats").beginObject();
    for (const sim::SamplingEstimate &e : si.scalars) {
        w.key(e.name).beginObject();
        w.key("total").value(e.total);
        w.key("ci95").value(e.ci95);
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

void
writeCellObservability(json::Writer &w, const ExperimentConfig &config,
                       const Cell &cell)
{
    const sim::SimResult &res = cell.result;

    if (res.intervals.enabled()) {
        // Per-interval deltas (formulas stay cumulative); the series
        // must be identical with --no-skip (spans split at boundaries).
        w.key("interval_stats").beginObject();
        w.key("interval").value(res.intervals.interval);
        w.key("samples").beginArray();
        const obs::StatSnapshot *prev = nullptr;
        for (const obs::IntervalSample &s : res.intervals.samples) {
            w.beginObject();
            w.key("cycle").value(s.cycle);
            w.key("stats").beginObject();
            for (const obs::StatValue &sv :
                 obs::intervalDelta(prev, s.stats))
                writeStat(w, sv);
            w.endObject();
            w.endObject();
            prev = &s.stats;
        }
        w.endArray();
        w.endObject();
    }

    if (config.pcProfileK != 0) {
        w.key("pc_profile").beginArray();
        for (const obs::PcProfileEntry &e :
             res.pipe.pcProfile.topK(config.pcProfileK)) {
            w.beginObject();
            w.key("pc").value(hexAddr(e.pc));
            w.key("requests").value(e.counts.requests);
            w.key("misses").value(e.counts.misses);
            w.key("walk_cycles").value(e.counts.walkCycles);
            w.key("piggyback_hits").value(e.counts.piggybackHits);
            w.endObject();
        }
        w.endArray();
    }

    if (res.pipe.phases.enabled) {
        // Host seconds: non-deterministic, ignored by sweep_diff.py.
        w.key("self_profile").beginObject();
        for (size_t i = 0; i < obs::kNumSimPhases; ++i)
            w.key(obs::simPhaseKey(obs::SimPhase(i)))
                .value(res.pipe.phases.seconds[i]);
        w.key("total_s").value(res.pipe.phases.totalSeconds);
        w.endObject();
    }
}

/**
 * Shared "meta" object: everything scripts/bench_compare.py needs to
 * decide whether two reports are comparable (and to attribute a
 * committed baseline to the commit that produced it).
 */
void
writeMeta(json::Writer &w, const ExperimentConfig &config,
          const std::vector<SweepColumn> *columns = nullptr)
{
    char host[256] = "unknown";
    if (gethostname(host, sizeof(host) - 1) != 0)
        std::strcpy(host, "unknown");

    w.key("meta").beginObject();
    w.key("git_sha").value(std::string(buildinfo::kGitSha));
    w.key("git_dirty").value(buildinfo::kGitDirty);
    w.key("build_type").value(std::string(buildinfo::kBuildType));
    w.key("compiler").value(std::string(buildinfo::kCompiler));
    w.key("host").value(std::string(host));
    w.key("jobs").value(uint64_t(config.jobs));
    // Sweep-spec provenance: which spec expanded into this grid and
    // what each column resolved to. Meta by design — sweep_diff.py
    // ignores it, so a spec reproducing a built-in sweep still diffs
    // byte-identical modulo meta.
    if (columns != nullptr && !config.sweepPath.empty()) {
        w.key("sweep_spec").value(config.sweepPath);
        w.key("columns").beginArray();
        for (const SweepColumn &col : *columns) {
            w.beginObject();
            w.key("label").value(col.label);
            w.key("config").beginObject();
            for (const auto &[key, val] : col.echo)
                w.key(key).value(val);
            w.endObject();
            w.endObject();
        }
        w.endArray();
    }
    w.endObject();
}

/** Shared "config" object. */
void
writeConfig(json::Writer &w, const ExperimentConfig &config)
{
    w.key("config").beginObject();
    w.key("scale").value(config.scale);
    w.key("page_bytes").value(uint64_t(config.pageBytes));
    w.key("in_order").value(config.inOrder);
    w.key("int_regs").value(int(config.budget.intRegs));
    w.key("fp_regs").value(int(config.budget.fpRegs));
    w.key("seed").value(config.seed);
    w.endObject();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        hbat_fatal("cannot open '", path, "' for writing");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

} // namespace

void
writeSweepJson(const std::string &title, const Sweep &sweep)
{
    if (sweep.config.jsonPath.empty())
        return;

    json::Writer w;
    w.beginObject();
    w.key("title").value(title);
    writeMeta(w, sweep.config, &sweep.columns);
    writeConfig(w, sweep.config);

    w.key("designs").beginArray();
    for (const SweepColumn &col : sweep.columns)
        w.value(col.label);
    w.endArray();

    w.key("programs").beginArray();
    for (const std::string &p : sweep.programs)
        w.value(p);
    w.endArray();

    w.key("cells").beginArray();
    for (size_t p = 0; p < sweep.programs.size(); ++p) {
        const double base = sweep.cell(p, 0).result.ipc();
        for (size_t d = 0; d < sweep.columns.size(); ++d) {
            const Cell &cell = sweep.cell(p, d);
            w.beginObject();
            w.key("program").value(cell.program);
            w.key("design").value(cell.design);
            w.key("ipc").value(cell.result.ipc());
            w.key("norm_ipc").value(ratio(cell.result.ipc(), base));
            w.key("cycles").value(cell.result.cycles());
            w.key("committed").value(cell.result.pipe.committed);
            w.key("wall_seconds").value(cell.wallSeconds);
            w.key("stats").beginObject();
            for (const obs::StatValue &sv : cell.result.stats)
                writeStat(w, sv);
            w.endObject();
            writeCellSampling(w, cell.result.sampling);
            writeCellObservability(w, sweep.config, cell);
            w.endObject();
        }
    }
    w.endArray();

    // Run-time weighted average of normalized IPC, as printed.
    w.key("summary").beginObject();
    w.key("rtw_avg_norm_ipc").beginObject();
    for (size_t d = 0; d < sweep.columns.size(); ++d) {
        std::vector<double> vals, weights;
        for (size_t p = 0; p < sweep.programs.size(); ++p) {
            const double base = sweep.cell(p, 0).result.ipc();
            vals.push_back(ratio(sweep.cell(p, d).result.ipc(), base));
            weights.push_back(double(sweep.cell(p, 0).result.cycles()));
        }
        w.key(sweep.columns[d].label)
            .value(weightedAverage(vals, weights));
    }
    w.endObject();
    w.key("wall_seconds").value(sweep.wallSeconds);
    if (sweep.samplingPrepSeconds != 0.0)
        w.key("sampling_prep_seconds")
            .value(sweep.samplingPrepSeconds);
    w.endObject();

    w.endObject();
    writeFile(sweep.config.jsonPath, w.str());
}

void
writeTableJson(const std::string &title,
               const ExperimentConfig &config, const TextTable &table)
{
    if (config.jsonPath.empty())
        return;
    const auto &cells = table.cells();
    hbat_assert(!cells.empty(), "table has no header");
    const std::vector<std::string> &head = cells[0];

    json::Writer w;
    w.beginObject();
    w.key("title").value(title);
    writeMeta(w, config);
    writeConfig(w, config);

    w.key("columns").beginArray();
    for (const std::string &c : head)
        w.value(c);
    w.endArray();

    w.key("rows").beginArray();
    for (size_t r = 1; r < cells.size(); ++r) {
        w.beginObject();
        for (size_t c = 0; c < head.size(); ++c)
            w.key(head[c]).value(cells[r][c]);
        w.endObject();
    }
    w.endArray();

    w.endObject();
    writeFile(config.jsonPath, w.str());
}

} // namespace hbat::bench
