#include "bench/harness.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>

#include <unistd.h>

#include <memory>

#include "common/build_info.hh"
#include "common/job_pool.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "obs/interval.hh"
#include "obs/pipeview.hh"
#include "obs/self_profile.hh"
#include "obs/trace.hh"
#include "verify/design_lint.hh"
#include "workloads/workloads.hh"

namespace hbat::bench
{

namespace
{

using SteadyTime = std::chrono::steady_clock::time_point;

SteadyTime
now()
{
    return std::chrono::steady_clock::now();
}

double
secondsSince(SteadyTime start)
{
    return std::chrono::duration<double>(now() - start).count();
}

/**
 * CPU time consumed by the calling thread. Cells are timed with this
 * rather than wall clock: a cell runs entirely on one worker, so its
 * cost reads the same whether the sweep ran at --jobs 1 or --jobs 8,
 * and summing cells never double-counts overlapped execution.
 */
double
threadCpuSeconds()
{
    timespec ts{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
}

} // namespace

const Cell &
Sweep::cell(size_t prog, size_t design) const
{
    return cells[prog * designs.size() + design];
}

sim::SimConfig
toSimConfig(const ExperimentConfig &config)
{
    sim::SimConfig sc;
    sc.pageBytes = config.pageBytes;
    sc.inOrder = config.inOrder;
    sc.budget = config.budget;
    sc.seed = config.seed;
    sc.idleSkip = !config.noSkip;
    sc.intervalCycles = config.intervalStats;
    sc.pcProfile = config.pcProfileK != 0;
    sc.selfProfile = config.selfProfile;
    return sc;
}

void
printVersion()
{
    std::printf("hbat %s%s (%s, %s)\n", buildinfo::kGitSha,
                buildinfo::kGitDirty ? "-dirty" : "",
                buildinfo::kBuildType, buildinfo::kCompiler);
}

ExperimentConfig
parseArgs(int argc, char **argv, ExperimentConfig defaults)
{
    ExperimentConfig cfg = defaults;
    if (const char *env = std::getenv("HBAT_SCALE"))
        cfg.scale = std::atof(env);
    if (const char *env = std::getenv("HBAT_NO_SKIP"))
        cfg.noSkip = env[0] != '\0' && env[0] != '0';
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            cfg.scale = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--program") == 0 &&
                   i + 1 < argc) {
            cfg.programs.push_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            cfg.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            cfg.jsonPath = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            cfg.jobs = unsigned(std::strtoul(argv[++i], nullptr, 10));
            if (cfg.jobs == 0)
                hbat_fatal("--jobs wants a positive integer");
        } else if (std::strcmp(argv[i], "--no-skip") == 0) {
            cfg.noSkip = true;
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            obs::setTraceMask(obs::parseTraceCats(argv[++i]));
        } else if (std::strcmp(argv[i], "--interval-stats") == 0 &&
                   i + 1 < argc) {
            cfg.intervalStats =
                std::strtoull(argv[++i], nullptr, 10);
            if (cfg.intervalStats == 0)
                hbat_fatal("--interval-stats wants a positive cycle "
                           "count");
        } else if (std::strcmp(argv[i], "--pc-profile") == 0 &&
                   i + 1 < argc) {
            cfg.pcProfileK =
                unsigned(std::strtoul(argv[++i], nullptr, 10));
            if (cfg.pcProfileK == 0)
                hbat_fatal("--pc-profile wants a positive top-K count");
        } else if (std::strcmp(argv[i], "--pipeview") == 0 &&
                   i + 1 < argc) {
            cfg.pipeviewPath = argv[++i];
        } else if (std::strcmp(argv[i], "--self-profile") == 0) {
            cfg.selfProfile = true;
        } else if (std::strcmp(argv[i], "--version") == 0) {
            printVersion();
            std::exit(0);
        } else {
            hbat_fatal("unknown argument '", argv[i],
                       "' (supported: --scale f, --program name, "
                       "--seed n, --json file, --jobs n, --no-skip, "
                       "--trace cats, --interval-stats n, "
                       "--pc-profile k, --pipeview file, "
                       "--self-profile, --version)");
        }
    }
    hbat_assert(cfg.scale > 0.0, "scale must be positive");
    if (cfg.jobs == 0)
        cfg.jobs = JobPool::defaultWorkers();
    return cfg;
}

void
progressLine(const std::string &msg)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::fprintf(stderr, "%s\n", msg.c_str());
}

Sweep
runDesignSweep(const ExperimentConfig &config,
               const std::vector<tlb::Design> &designs)
{
    Sweep sweep;
    sweep.config = config;
    sweep.designs = designs;

    if (config.programs.empty()) {
        for (const workloads::Workload &w : workloads::all())
            sweep.programs.push_back(w.name);
    } else {
        sweep.programs = config.programs;
    }

    const unsigned jobs =
        config.jobs ? config.jobs : JobPool::defaultWorkers();
    sweep.config.jobs = jobs;   // report the resolved count, not 0
    const size_t nProgs = sweep.programs.size();
    const size_t nDesigns = designs.size();

    // Reject structurally-invalid experiment setups before burning
    // cycles: errors abort, warnings print and proceed.
    {
        verify::Report report;
        sim::SimConfig sc = toSimConfig(config);
        verify::lintConfig(sc, report);
        for (tlb::Design d : designs)
            verify::lintDesign(d, report, config.pageBytes);
        for (const verify::Diagnostic &diag : report.diags) {
            if (diag.severity >= verify::Severity::Warning)
                hbat_warn("design lint: ", diag.str());
        }
        if (!report.clean(verify::Severity::Error))
            hbat_fatal("design lint found errors; aborting sweep");
    }

    // One link, one decode, and one page image per program serve
    // every design; all three are immutable once built, so cells
    // share them freely (pages clone copy-on-write per cell).
    std::vector<kasm::Program> images(nProgs);
    std::vector<std::shared_ptr<const cpu::StaticCode>> codes(nProgs);
    std::vector<std::shared_ptr<const vm::ProgramImage>> pages(nProgs);
    parallelFor(nProgs, jobs, [&](size_t p) {
        images[p] = workloads::build(sweep.programs[p], config.budget,
                                     config.scale);
        codes[p] = std::make_shared<const cpu::StaticCode>(images[p]);
        pages[p] = std::make_shared<const vm::ProgramImage>(
            images[p], vm::PageParams(config.pageBytes));
    });

    // Every (program, design) cell is one independent job writing its
    // own pre-sized slot, which keeps cell order — and therefore every
    // table and report — identical at any job count.
    sweep.cells.resize(nProgs * nDesigns);
    const SteadyTime sweepStart = now();
    parallelFor(sweep.cells.size(), jobs, [&](size_t idx) {
        const size_t p = idx / nDesigns;
        const size_t d = idx % nDesigns;
        Cell &cell = sweep.cells[idx];
        cell.program = sweep.programs[p];
        cell.design = designs[d];

        const double cellStart = threadCpuSeconds();
        sim::SimConfig sc = toSimConfig(config);
        sc.design = designs[d];

        // One pipeview file per cell: concurrent cells cannot share a
        // writer, and a single-cell run keeps the plain path.
        std::unique_ptr<obs::PipeviewWriter> pview;
        if (!config.pipeviewPath.empty()) {
            std::string path = config.pipeviewPath;
            if (nProgs * nDesigns > 1)
                path += std::string(".") + cell.program + "." +
                        tlb::designName(cell.design);
            pview = std::make_unique<obs::PipeviewWriter>(path);
            sc.pipeview = pview.get();
        }

        cell.result = sim::simulate(images[p], sc, codes[p], pages[p]);
        cell.wallSeconds = threadCpuSeconds() - cellStart;

        const cpu::PipeStats &ps = cell.result.pipe;
        const double skipPct =
            ps.cycles ? 100.0 * double(ps.skippedCycles) /
                            double(ps.cycles)
                      : 0.0;
        progressLine(detail::concat(
            "  [", cell.program, " / ", tlb::designName(cell.design),
            "]  ", fixed(cell.wallSeconds, 2), "s  skip ",
            fixed(skipPct, 0), "%"));
    });
    sweep.wallSeconds = secondsSince(sweepStart);
    return sweep;
}

namespace
{

void
printTable(const std::string &title, const Sweep &sweep,
           bool normalized)
{
    TextTable table;
    std::vector<std::string> head{"program"};
    for (tlb::Design d : sweep.designs)
        head.push_back(tlb::designName(d));
    table.header(std::move(head));

    for (size_t p = 0; p < sweep.programs.size(); ++p) {
        std::vector<std::string> row{sweep.programs[p]};
        const double base = sweep.cell(p, 0).result.ipc();
        for (size_t d = 0; d < sweep.designs.size(); ++d) {
            const double ipc = sweep.cell(p, d).result.ipc();
            row.push_back(normalized ? fixed(ratio(ipc, base), 3)
                                     : fixed(ipc, 3));
        }
        table.row(std::move(row));
    }

    // Run-time weighted average (weights: cycles under the first
    // design, which the experiments keep as T4 per the paper).
    std::vector<std::string> avg{"RTW-avg"};
    for (size_t d = 0; d < sweep.designs.size(); ++d) {
        std::vector<double> vals, weights;
        for (size_t p = 0; p < sweep.programs.size(); ++p) {
            const double base = sweep.cell(p, 0).result.ipc();
            const double ipc = sweep.cell(p, d).result.ipc();
            vals.push_back(normalized ? ratio(ipc, base) : ipc);
            weights.push_back(double(sweep.cell(p, 0).result.cycles()));
        }
        avg.push_back(fixed(weightedAverage(vals, weights), 3));
    }
    table.row(std::move(avg));

    std::printf("%s\n", title.c_str());
    std::printf("(scale %.2f, %s issue, %u-byte pages, %d int/%d fp "
                "registers)\n\n",
                sweep.config.scale,
                sweep.config.inOrder ? "in-order" : "out-of-order",
                sweep.config.pageBytes, sweep.config.budget.intRegs,
                sweep.config.budget.fpRegs);
    std::printf("%s\n", table.render().c_str());
}

} // namespace

void
printSweep(const std::string &title, const Sweep &sweep)
{
    printTable(title, sweep, true);
}

void
printSweepAbsolute(const std::string &title, const Sweep &sweep)
{
    printTable(title, sweep, false);
}

namespace
{

/** Emit one snapshotted stat as a "name": value member. */
void
writeStat(json::Writer &w, const obs::StatValue &sv)
{
    w.key(sv.name);
    switch (sv.kind) {
      case obs::StatKind::Scalar:
      case obs::StatKind::Formula:
        w.value(sv.value);
        break;
      case obs::StatKind::Vector:
        w.beginObject();
        for (size_t i = 0; i < sv.values.size(); ++i)
            w.key(sv.labels[i]).value(sv.values[i]);
        w.endObject();
        break;
      case obs::StatKind::Histogram:
        w.beginObject();
        w.key("samples").value(sv.samples);
        w.key("mean").value(sv.mean);
        w.key("buckets").beginArray();
        for (double b : sv.values)
            w.value(b);
        w.endArray();
        w.endObject();
        break;
    }
}

/** 0x-prefixed hex rendering of an address (JSON keys/values). */
std::string
hexAddr(VAddr a)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(a));
    return buf;
}

/**
 * The per-cell observability sections (present only when their
 * feature was requested, so default reports keep their exact shape).
 */
void
writeCellObservability(json::Writer &w, const ExperimentConfig &config,
                       const Cell &cell)
{
    const sim::SimResult &res = cell.result;

    if (res.intervals.enabled()) {
        // Per-interval deltas (formulas stay cumulative); the series
        // must be identical with --no-skip (spans split at boundaries).
        w.key("interval_stats").beginObject();
        w.key("interval").value(res.intervals.interval);
        w.key("samples").beginArray();
        const obs::StatSnapshot *prev = nullptr;
        for (const obs::IntervalSample &s : res.intervals.samples) {
            w.beginObject();
            w.key("cycle").value(s.cycle);
            w.key("stats").beginObject();
            for (const obs::StatValue &sv :
                 obs::intervalDelta(prev, s.stats))
                writeStat(w, sv);
            w.endObject();
            w.endObject();
            prev = &s.stats;
        }
        w.endArray();
        w.endObject();
    }

    if (config.pcProfileK != 0) {
        w.key("pc_profile").beginArray();
        for (const obs::PcProfileEntry &e :
             res.pipe.pcProfile.topK(config.pcProfileK)) {
            w.beginObject();
            w.key("pc").value(hexAddr(e.pc));
            w.key("requests").value(e.counts.requests);
            w.key("misses").value(e.counts.misses);
            w.key("walk_cycles").value(e.counts.walkCycles);
            w.key("piggyback_hits").value(e.counts.piggybackHits);
            w.endObject();
        }
        w.endArray();
    }

    if (res.pipe.phases.enabled) {
        // Host seconds: non-deterministic, ignored by sweep_diff.py.
        w.key("self_profile").beginObject();
        for (size_t i = 0; i < obs::kNumSimPhases; ++i)
            w.key(obs::simPhaseKey(obs::SimPhase(i)))
                .value(res.pipe.phases.seconds[i]);
        w.key("total_s").value(res.pipe.phases.totalSeconds);
        w.endObject();
    }
}

/**
 * Shared "meta" object: everything scripts/bench_compare.py needs to
 * decide whether two reports are comparable (and to attribute a
 * committed baseline to the commit that produced it).
 */
void
writeMeta(json::Writer &w, const ExperimentConfig &config)
{
    char host[256] = "unknown";
    if (gethostname(host, sizeof(host) - 1) != 0)
        std::strcpy(host, "unknown");

    w.key("meta").beginObject();
    w.key("git_sha").value(std::string(buildinfo::kGitSha));
    w.key("git_dirty").value(buildinfo::kGitDirty);
    w.key("build_type").value(std::string(buildinfo::kBuildType));
    w.key("compiler").value(std::string(buildinfo::kCompiler));
    w.key("host").value(std::string(host));
    w.key("jobs").value(uint64_t(config.jobs));
    w.endObject();
}

/** Shared "config" object. */
void
writeConfig(json::Writer &w, const ExperimentConfig &config)
{
    w.key("config").beginObject();
    w.key("scale").value(config.scale);
    w.key("page_bytes").value(uint64_t(config.pageBytes));
    w.key("in_order").value(config.inOrder);
    w.key("int_regs").value(int(config.budget.intRegs));
    w.key("fp_regs").value(int(config.budget.fpRegs));
    w.key("seed").value(config.seed);
    w.endObject();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        hbat_fatal("cannot open '", path, "' for writing");
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
}

} // namespace

void
writeSweepJson(const std::string &title, const Sweep &sweep)
{
    if (sweep.config.jsonPath.empty())
        return;

    json::Writer w;
    w.beginObject();
    w.key("title").value(title);
    writeMeta(w, sweep.config);
    writeConfig(w, sweep.config);

    w.key("designs").beginArray();
    for (tlb::Design d : sweep.designs)
        w.value(tlb::designName(d));
    w.endArray();

    w.key("programs").beginArray();
    for (const std::string &p : sweep.programs)
        w.value(p);
    w.endArray();

    w.key("cells").beginArray();
    for (size_t p = 0; p < sweep.programs.size(); ++p) {
        const double base = sweep.cell(p, 0).result.ipc();
        for (size_t d = 0; d < sweep.designs.size(); ++d) {
            const Cell &cell = sweep.cell(p, d);
            w.beginObject();
            w.key("program").value(cell.program);
            w.key("design").value(tlb::designName(cell.design));
            w.key("ipc").value(cell.result.ipc());
            w.key("norm_ipc").value(ratio(cell.result.ipc(), base));
            w.key("cycles").value(cell.result.cycles());
            w.key("committed").value(cell.result.pipe.committed);
            w.key("wall_seconds").value(cell.wallSeconds);
            w.key("stats").beginObject();
            for (const obs::StatValue &sv : cell.result.stats)
                writeStat(w, sv);
            w.endObject();
            writeCellObservability(w, sweep.config, cell);
            w.endObject();
        }
    }
    w.endArray();

    // Run-time weighted average of normalized IPC, as printed.
    w.key("summary").beginObject();
    w.key("rtw_avg_norm_ipc").beginObject();
    for (size_t d = 0; d < sweep.designs.size(); ++d) {
        std::vector<double> vals, weights;
        for (size_t p = 0; p < sweep.programs.size(); ++p) {
            const double base = sweep.cell(p, 0).result.ipc();
            vals.push_back(ratio(sweep.cell(p, d).result.ipc(), base));
            weights.push_back(double(sweep.cell(p, 0).result.cycles()));
        }
        w.key(tlb::designName(sweep.designs[d]))
            .value(weightedAverage(vals, weights));
    }
    w.endObject();
    w.key("wall_seconds").value(sweep.wallSeconds);
    w.endObject();

    w.endObject();
    writeFile(sweep.config.jsonPath, w.str());
}

void
writeTableJson(const std::string &title,
               const ExperimentConfig &config, const TextTable &table)
{
    if (config.jsonPath.empty())
        return;
    const auto &cells = table.cells();
    hbat_assert(!cells.empty(), "table has no header");
    const std::vector<std::string> &head = cells[0];

    json::Writer w;
    w.beginObject();
    w.key("title").value(title);
    writeMeta(w, config);
    writeConfig(w, config);

    w.key("columns").beginArray();
    for (const std::string &c : head)
        w.value(c);
    w.endArray();

    w.key("rows").beginArray();
    for (size_t r = 1; r < cells.size(); ++r) {
        w.beginObject();
        for (size_t c = 0; c < head.size(); ++c)
            w.key(head[c]).value(cells[r][c]);
        w.endObject();
    }
    w.endArray();

    w.endObject();
    writeFile(config.jsonPath, w.str());
}

} // namespace hbat::bench
