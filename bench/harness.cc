#include "bench/harness.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "common/stats.hh"
#include "workloads/workloads.hh"

namespace hbat::bench
{

const Cell &
Sweep::cell(size_t prog, size_t design) const
{
    return cells[prog * designs.size() + design];
}

ExperimentConfig
parseArgs(int argc, char **argv, ExperimentConfig defaults)
{
    ExperimentConfig cfg = defaults;
    if (const char *env = std::getenv("HBAT_SCALE"))
        cfg.scale = std::atof(env);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
            cfg.scale = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--program") == 0 &&
                   i + 1 < argc) {
            cfg.programs.push_back(argv[++i]);
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            cfg.seed = std::strtoull(argv[++i], nullptr, 0);
        } else {
            hbat_fatal("unknown argument '", argv[i],
                       "' (supported: --scale f, --program name, "
                       "--seed n)");
        }
    }
    hbat_assert(cfg.scale > 0.0, "scale must be positive");
    return cfg;
}

Sweep
runDesignSweep(const ExperimentConfig &config,
               const std::vector<tlb::Design> &designs)
{
    Sweep sweep;
    sweep.config = config;
    sweep.designs = designs;

    if (config.programs.empty()) {
        for (const workloads::Workload &w : workloads::all())
            sweep.programs.push_back(w.name);
    } else {
        sweep.programs = config.programs;
    }

    for (const std::string &name : sweep.programs) {
        // One link per program serves every design.
        const kasm::Program prog =
            workloads::build(name, config.budget, config.scale);
        for (tlb::Design d : designs) {
            std::fprintf(stderr, "  [%s / %s]\n", name.c_str(),
                         tlb::designName(d).c_str());
            sim::SimConfig sc;
            sc.design = d;
            sc.pageBytes = config.pageBytes;
            sc.inOrder = config.inOrder;
            sc.budget = config.budget;
            sc.seed = config.seed;
            Cell cell;
            cell.program = name;
            cell.design = d;
            cell.result = sim::simulate(prog, sc);
            sweep.cells.push_back(std::move(cell));
        }
    }
    return sweep;
}

namespace
{

void
printTable(const std::string &title, const Sweep &sweep,
           bool normalized)
{
    TextTable table;
    std::vector<std::string> head{"program"};
    for (tlb::Design d : sweep.designs)
        head.push_back(tlb::designName(d));
    table.header(std::move(head));

    for (size_t p = 0; p < sweep.programs.size(); ++p) {
        std::vector<std::string> row{sweep.programs[p]};
        const double base = sweep.cell(p, 0).result.ipc();
        for (size_t d = 0; d < sweep.designs.size(); ++d) {
            const double ipc = sweep.cell(p, d).result.ipc();
            row.push_back(normalized ? fixed(ratio(ipc, base), 3)
                                     : fixed(ipc, 3));
        }
        table.row(std::move(row));
    }

    // Run-time weighted average (weights: cycles under the first
    // design, which the experiments keep as T4 per the paper).
    std::vector<std::string> avg{"RTW-avg"};
    for (size_t d = 0; d < sweep.designs.size(); ++d) {
        std::vector<double> vals, weights;
        for (size_t p = 0; p < sweep.programs.size(); ++p) {
            const double base = sweep.cell(p, 0).result.ipc();
            const double ipc = sweep.cell(p, d).result.ipc();
            vals.push_back(normalized ? ratio(ipc, base) : ipc);
            weights.push_back(double(sweep.cell(p, 0).result.cycles()));
        }
        avg.push_back(fixed(weightedAverage(vals, weights), 3));
    }
    table.row(std::move(avg));

    std::printf("%s\n", title.c_str());
    std::printf("(scale %.2f, %s issue, %u-byte pages, %d int/%d fp "
                "registers)\n\n",
                sweep.config.scale,
                sweep.config.inOrder ? "in-order" : "out-of-order",
                sweep.config.pageBytes, sweep.config.budget.intRegs,
                sweep.config.budget.fpRegs);
    std::printf("%s\n", table.render().c_str());
}

} // namespace

void
printSweep(const std::string &title, const Sweep &sweep)
{
    printTable(title, sweep, true);
}

void
printSweepAbsolute(const std::string &title, const Sweep &sweep)
{
    printTable(title, sweep, false);
}

} // namespace hbat::bench
