/**
 * @file
 * Cost/performance table: the first-order area/latency estimates of
 * every Table 2 design (src/tlb/cost_model.hh) next to its simulated
 * relative IPC on a compact subset of the suite. This tabulates the
 * paper's core argument: several designs match T4's performance at a
 * fraction of its (quadratically growing) multi-port cost.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "common/stats.hh"
#include "tlb/cost_model.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig defaults;
    defaults.scale = 0.25;
    defaults.programs = {"xlisp", "tomcatv", "compress", "perl"};
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);

    // Stays enum-driven: the cost model is keyed on the Table 2 rows.
    const std::vector<tlb::Design> designs = tlb::allDesigns();
    const bench::Sweep sweep = bench::runDesignSweep(cfg, designs);

    TextTable table;
    table.header({"design", "rel-IPC", "area(rbe)", "rel-area",
                  "port-latency", "miss-path"});

    const double t4Area =
        tlb::designCost(tlb::Design::T4).areaRbe;
    for (size_t d = 0; d < designs.size(); ++d) {
        std::vector<double> vals, weights;
        for (size_t p = 0; p < sweep.programs.size(); ++p) {
            vals.push_back(ratio(sweep.cell(p, d).result.ipc(),
                                 sweep.cell(p, 0).result.ipc()));
            weights.push_back(
                double(sweep.cell(p, 0).result.cycles()));
        }
        const tlb::CostEstimate cost = tlb::designCost(designs[d]);
        table.row({
            sweep.columns[d].label,
            fixed(weightedAverage(vals, weights), 3),
            fixed(cost.areaRbe, 0),
            fixed(cost.areaRbe / t4Area, 2),
            fixed(cost.accessLatency, 2),
            fixed(cost.missPathLatency, 2),
        });
    }

    std::printf("Cost vs. performance across Table 2 designs "
                "(area/latency are first-order relative units; "
                "scale %.2f)\n\n%s\n",
                cfg.scale, table.render().c_str());
    bench::writeTableJson(
        "Cost vs. performance across Table 2 designs", cfg, table);
    return 0;
}
