/**
 * @file
 * Google-benchmark microbenchmarks of the translation engines'
 * simulation throughput: the per-cycle request path of each Table 2
 * design, plus the TlbArray primitives. These measure *simulator*
 * performance (host ns/op), useful when sizing larger experiments.
 */

#include <cstring>

#include <benchmark/benchmark.h>
#include <unistd.h>

#include "common/build_info.hh"
#include "common/rng.hh"
#include "tlb/design.hh"
#include "tlb/tlb_array.hh"
#include "vm/page_table.hh"

namespace
{

using namespace hbat;

void
BM_TlbArrayLookup(benchmark::State &state)
{
    tlb::TlbArray array(unsigned(state.range(0)),
                        tlb::Replacement::Random, 1);
    Rng rng(2);
    Cycle clock = 0;
    for (unsigned i = 0; i < state.range(0); ++i)
        array.insert(i, clock++);
    for (auto _ : state) {
        const Vpn v = rng.below(uint64_t(state.range(0)) * 2);
        benchmark::DoNotOptimize(array.lookup(v, ++clock));
    }
}
BENCHMARK(BM_TlbArrayLookup)->Arg(8)->Arg(32)->Arg(128);

void
BM_TlbArrayInsertEvict(benchmark::State &state)
{
    tlb::TlbArray array(128, tlb::Replacement::Random, 1);
    Rng rng(3);
    Cycle clock = 0;
    for (auto _ : state)
        array.insert(rng.next(), ++clock);
}
BENCHMARK(BM_TlbArrayInsertEvict);

void
runEngine(benchmark::State &state, tlb::Design design, double locality)
{
    vm::PageTable pt;
    auto engine = tlb::makeEngine(design, pt, 7);
    Rng rng(4);
    Cycle clock = 0;
    Vpn page = 0;
    for (auto _ : state) {
        engine->beginCycle(++clock);
        for (int r = 0; r < 4; ++r) {
            if (!rng.chance(locality))
                page = rng.below(4096);
            tlb::XlateRequest req;
            req.vpn = page;
            req.seq = clock * 4 + r;
            req.baseReg = RegIndex(r + 4);
            req.isLoad = true;
            const tlb::Outcome out = engine->request(req, clock);
            if (out.kind == tlb::Outcome::Kind::Miss)
                engine->fill(page, clock);
            benchmark::DoNotOptimize(out);
        }
    }
    state.SetItemsProcessed(state.iterations() * 4);
}

void
BM_EngineCycle(benchmark::State &state)
{
    const auto designs = tlb::allDesigns();
    runEngine(state, designs[size_t(state.range(0))], 0.8);
}
BENCHMARK(BM_EngineCycle)
    ->DenseRange(0, int(tlb::Design::NumDesigns) - 1)
    ->ArgName("design");

void
BM_EngineCycleLowLocality(benchmark::State &state)
{
    const auto designs = tlb::allDesigns();
    runEngine(state, designs[size_t(state.range(0))], 0.1);
}
BENCHMARK(BM_EngineCycleLowLocality)
    ->Arg(0)    // T4
    ->Arg(7)    // M8
    ->Arg(9)    // P8
    ->ArgName("design");

} // namespace

// Expanded BENCHMARK_MAIN() so the report carries the same metadata
// as the sweep JSON (scripts/bench_compare.py matches reports on it).
int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--version") == 0) {
            std::printf("hbat %s%s (%s, %s)\n",
                        hbat::buildinfo::kGitSha,
                        hbat::buildinfo::kGitDirty ? "-dirty" : "",
                        hbat::buildinfo::kBuildType,
                        hbat::buildinfo::kCompiler);
            return 0;
        }
    }

    char host[256] = "unknown";
    if (gethostname(host, sizeof(host) - 1) != 0)
        std::strcpy(host, "unknown");
    benchmark::AddCustomContext("git_sha", hbat::buildinfo::kGitSha);
    benchmark::AddCustomContext("git_dirty",
                                hbat::buildinfo::kGitDirty ? "true"
                                                           : "false");
    benchmark::AddCustomContext("build_type",
                                hbat::buildinfo::kBuildType);
    benchmark::AddCustomContext("compiler", hbat::buildinfo::kCompiler);
    benchmark::AddCustomContext("host", host);

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
