/**
 * @file
 * Ablation: page-size sweep from 1 KB to 16 KB.
 *
 * Extends the paper's 4 KB-vs-8 KB comparison (Section 4.5) across a
 * wider range for a representative design subset. Larger pages expand
 * L1-TLB reach and pretranslation lifetimes and widen the piggyback
 * window; smaller pages stress everything.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "common/stats.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig defaults;
    defaults.scale = 0.2;
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);

    const std::vector<tlb::Design> designs = {
        tlb::Design::T4, tlb::Design::T1, tlb::Design::M8,
        tlb::Design::P8, tlb::Design::PB1, tlb::Design::I4,
    };

    TextTable table;
    {
        std::vector<std::string> head{"page size"};
        for (tlb::Design d : designs)
            head.push_back(tlb::designName(d));
        table.header(std::move(head));
    }

    for (unsigned pages : {1024u, 2048u, 4096u, 8192u, 16384u}) {
        bench::ExperimentConfig pc = cfg;
        pc.pageBytes = pages;
        std::fprintf(stderr, " == %u-byte pages ==\n", pages);
        const bench::Sweep sweep = bench::runDesignSweep(pc, designs);

        std::vector<std::string> row{std::to_string(pages / 1024) +
                                     " KB"};
        for (size_t d = 0; d < designs.size(); ++d) {
            std::vector<double> vals, weights;
            for (size_t p = 0; p < sweep.programs.size(); ++p) {
                vals.push_back(ratio(sweep.cell(p, d).result.ipc(),
                                     sweep.cell(p, 0).result.ipc()));
                weights.push_back(
                    double(sweep.cell(p, 0).result.cycles()));
            }
            row.push_back(fixed(weightedAverage(vals, weights), 3));
        }
        table.row(std::move(row));
    }

    std::printf("Ablation: page-size sweep (IPC relative to T4 at the "
                "same page size; scale %.2f)\n\n%s\n",
                cfg.scale, table.render().c_str());
    bench::writeTableJson("Ablation: page-size sweep", cfg, table);
    return 0;
}
