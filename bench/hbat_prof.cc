/**
 * @file
 * hbat_prof: per-PC translation attribution profiler.
 *
 * Runs the selected workloads under the selected designs with the
 * per-PC profile enabled and prints, per (program, design) cell, the
 * static instructions that concentrate the translation misses — the
 * measurement behind PC-indexed translation proposals: a handful of
 * static loads/stores usually carries most of the miss traffic.
 *
 * Flags, on top of the shared bench set (see bench::parseArgs):
 *   --design NAME   profile this Table 2 design (repeatable; default
 *                   T4, the reference)
 *   --top K         rows per cell (default 20; same as --pc-profile)
 *
 * With --json, the report is the standard sweep JSON with each cell's
 * "pc_profile" section — deterministic at any --jobs setting.
 */

#include <cstring>
#include <vector>

#include "bench/harness.hh"
#include "common/stats.hh"
#include "isa/isa.hh"
#include "obs/pc_profile.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;

/** Disassemble the static instruction at @p pc, or "?" off-text. */
std::string
disasmAt(const kasm::Program &prog, VAddr pc)
{
    if (pc < prog.textBase || pc >= prog.textEnd() || pc % 4 != 0)
        return "?";
    isa::Inst inst;
    if (!isa::tryDecode(prog.text[(pc - prog.textBase) / 4], inst))
        return "?";
    return isa::disassemble(inst, pc);
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip the profiler-specific flags, then hand the rest to the
    // shared parser (which rejects anything it doesn't know).
    std::vector<tlb::Design> designs;
    unsigned top = 0;
    std::vector<char *> rest{argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--design") == 0 && i + 1 < argc) {
            designs.push_back(tlb::parseDesign(argv[++i]));
        } else if (std::strcmp(argv[i], "--top") == 0 &&
                   i + 1 < argc) {
            top = unsigned(std::strtoul(argv[++i], nullptr, 10));
            if (top == 0)
                hbat_fatal("--top wants a positive row count");
        } else {
            rest.push_back(argv[i]);
        }
    }

    bench::ExperimentConfig cfg = bench::parseArgs(
        int(rest.size()), rest.data(), bench::ExperimentConfig{});
    if (top != 0)
        cfg.pcProfileK = top;
    else if (cfg.pcProfileK == 0)
        cfg.pcProfileK = 20;
    if (designs.empty())
        designs.push_back(tlb::Design::T4);

    const bench::Sweep sweep = bench::runDesignSweep(cfg, designs);

    for (size_t p = 0; p < sweep.programs.size(); ++p) {
        // Rebuilt only to label rows; the profiled runs share the
        // sweep's images.
        const kasm::Program prog = workloads::build(
            sweep.programs[p], cfg.budget, cfg.scale);
        for (size_t d = 0; d < sweep.columns.size(); ++d) {
            const bench::Cell &cell = sweep.cell(p, d);
            const tlb::XlateStats &xs = cell.result.pipe.xlate;

            std::printf("\n%s / %s: top %u PCs by TLB misses "
                        "(%llu misses, %llu walks total)\n",
                        cell.program.c_str(), cell.design.c_str(),
                        cfg.pcProfileK,
                        (unsigned long long)xs.misses,
                        (unsigned long long)cell.result.pipe.tlbWalks);

            TextTable table;
            table.header({"pc", "op", "requests", "misses", "miss%",
                          "walk_cycles", "piggyback_hits"});
            for (const obs::PcProfileEntry &e :
                 cell.result.pipe.pcProfile.topK(cfg.pcProfileK)) {
                char pc[32];
                std::snprintf(pc, sizeof(pc), "0x%llx",
                              (unsigned long long)e.pc);
                const double missPct =
                    e.counts.requests
                        ? 100.0 * double(e.counts.misses) /
                              double(e.counts.requests)
                        : 0.0;
                table.row({pc, disasmAt(prog, e.pc),
                           std::to_string(e.counts.requests),
                           std::to_string(e.counts.misses),
                           fixed(missPct, 2),
                           std::to_string(e.counts.walkCycles),
                           std::to_string(e.counts.piggybackHits)});
            }
            std::printf("%s\n", table.render().c_str());
        }
    }

    bench::writeSweepJson("Per-PC translation profile", sweep);
    return 0;
}
