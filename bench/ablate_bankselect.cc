/**
 * @file
 * Ablation: interleaving degree, bank-selection function, and
 * per-bank piggybacking.
 *
 * Sweeps 2/4/8/16 banks x {bit-select, XOR-fold} x {plain,
 * piggybacked} and reports relative IPC plus the bank-conflict rate
 * (NoPort answers per request). Section 4.3's conclusion — that many
 * simultaneous accesses target the *same page*, which no
 * bank-selection function can spread — shows up as the conflict rate
 * that only piggybacking removes.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "common/job_pool.hh"
#include "common/stats.hh"
#include "cpu/static_code.hh"
#include "tlb/interleaved.hh"
#include "vm/program_image.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig defaults;
    defaults.scale = 0.15;    // ablations sweep many configs
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);

    std::vector<std::string> programs;
    if (cfg.programs.empty()) {
        for (const workloads::Workload &w : workloads::all())
            programs.push_back(w.name);
    } else {
        programs = cfg.programs;
    }

    TextTable table;
    table.header({"config", "rel-IPC", "conflicts/req", "piggyback%"});

    // The T4 reference depends only on the program, so build each
    // image and time its reference run once (the serial version redid
    // both for all 16 interleaving configurations), then run the grid
    // as independent cells. Aggregation walks the cells in the
    // original loop order, so the table matches at any --jobs.
    std::vector<kasm::Program> images(programs.size());
    std::vector<std::shared_ptr<const cpu::StaticCode>> codes(
        programs.size());
    std::vector<std::shared_ptr<const vm::ProgramImage>> pages(
        programs.size());
    std::vector<double> t4Ipc(programs.size());
    parallelFor(programs.size(), cfg.jobs, [&](size_t p) {
        images[p] = workloads::build(programs[p], cfg.budget,
                                     cfg.scale);
        codes[p] = std::make_shared<const cpu::StaticCode>(images[p]);
        pages[p] = std::make_shared<const vm::ProgramImage>(
            images[p], vm::PageParams(cfg.pageBytes));
        sim::SimConfig sc = bench::toSimConfig(cfg);
        sc.design = tlb::Design::T4;
        t4Ipc[p] =
            sim::simulate(images[p], sc, codes[p], pages[p]).ipc();
        bench::progressLine("  [" + programs[p] + " T4]");
    });

    struct BankConfig
    {
        bool piggy;
        tlb::BankSelect sel;
        unsigned banks;
    };
    std::vector<BankConfig> grid;
    for (const bool piggy : {false, true})
        for (const tlb::BankSelect sel :
             {tlb::BankSelect::BitSelect, tlb::BankSelect::XorFold})
            for (unsigned banks : {2u, 4u, 8u, 16u})
                grid.push_back({piggy, sel, banks});

    struct CellOut
    {
        double relIpc = 0;
        uint64_t noPort = 0;
        uint64_t requests = 0;
        uint64_t piggybacks = 0;
    };
    std::vector<CellOut> out(grid.size() * programs.size());
    parallelFor(out.size(), cfg.jobs, [&](size_t idx) {
        const BankConfig &gc = grid[idx / programs.size()];
        const size_t p = idx % programs.size();
        bench::progressLine("  [" + programs[p] + " " +
                            std::to_string(gc.banks) + " banks]");
        sim::SimConfig sc = bench::toSimConfig(cfg);
        std::string engName = "I";
        engName += std::to_string(gc.banks);
        const sim::SimResult r = sim::simulateWithEngine(
            images[p], sc,
            [&](vm::PageTable &pt) {
                return std::make_unique<tlb::InterleavedTlb>(
                    pt, gc.banks, gc.sel, 128, gc.piggy, cfg.seed);
            },
            engName, codes[p], pages[p]);
        out[idx] = {ratio(r.ipc(), t4Ipc[p]), r.pipe.xlate.noPort,
                    r.pipe.xlate.requests, r.pipe.xlate.piggybacks};
    });

    for (size_t g = 0; g < grid.size(); ++g) {
        double ipcSum = 0, n = 0;
        uint64_t noPort = 0, requests = 0, piggybacks = 0;
        for (size_t p = 0; p < programs.size(); ++p) {
            const CellOut &c = out[g * programs.size() + p];
            ipcSum += c.relIpc;
            n += 1.0;
            noPort += c.noPort;
            requests += c.requests;
            piggybacks += c.piggybacks;
        }
        std::string rowName = "I";
        rowName += std::to_string(grid[g].banks);
        rowName += grid[g].sel == tlb::BankSelect::BitSelect ? "/bit"
                                                             : "/xor";
        if (grid[g].piggy)
            rowName += "+pb";
        table.row({
            rowName,
            fixed(ipcSum / n, 3),
            fixed(ratio(noPort, requests), 3),
            percent(ratio(piggybacks, requests), 1),
        });
    }

    std::printf("Ablation: interleaving degree and bank selection "
                "(scale %.2f)\n\n%s\n",
                cfg.scale, table.render().c_str());
    bench::writeTableJson(
        "Ablation: interleaving degree and bank selection", cfg,
        table);
    return 0;
}
