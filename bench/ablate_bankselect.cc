/**
 * @file
 * Ablation: interleaving degree, bank-selection function, and
 * per-bank piggybacking.
 *
 * Sweeps 2/4/8/16 banks x {bit-select, XOR-fold} x {plain,
 * piggybacked} and reports relative IPC plus the bank-conflict rate
 * (NoPort answers per request). Section 4.3's conclusion — that many
 * simultaneous accesses target the *same page*, which no
 * bank-selection function can spread — shows up as the conflict rate
 * that only piggybacking removes.
 */

#include <cstdio>

#include "bench/harness.hh"
#include "common/stats.hh"
#include "tlb/interleaved.hh"
#include "workloads/workloads.hh"

int
main(int argc, char **argv)
{
    using namespace hbat;
    bench::ExperimentConfig defaults;
    defaults.scale = 0.15;    // ablations sweep many configs
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, defaults);

    std::vector<std::string> programs;
    if (cfg.programs.empty()) {
        for (const workloads::Workload &w : workloads::all())
            programs.push_back(w.name);
    } else {
        programs = cfg.programs;
    }

    TextTable table;
    table.header({"config", "rel-IPC", "conflicts/req", "piggyback%"});

    for (const bool piggy : {false, true}) {
        for (const tlb::BankSelect sel :
             {tlb::BankSelect::BitSelect, tlb::BankSelect::XorFold}) {
            for (unsigned banks : {2u, 4u, 8u, 16u}) {
                double ipcSum = 0, n = 0;
                uint64_t noPort = 0, requests = 0, piggybacks = 0;
                for (const std::string &name : programs) {
                    std::fprintf(stderr, "  [%s %u banks]\n",
                                 name.c_str(), banks);
                    const kasm::Program prog =
                        workloads::build(name, cfg.budget, cfg.scale);
                    sim::SimConfig sc;
                    sc.pageBytes = cfg.pageBytes;
                    sc.seed = cfg.seed;
                    sc.design = tlb::Design::T4;
                    const double t4 = sim::simulate(prog, sc).ipc();

                    const sim::SimResult r = sim::simulateWithEngine(
                        prog, sc,
                        [&](vm::PageTable &pt) {
                            return std::make_unique<
                                tlb::InterleavedTlb>(pt, banks, sel,
                                                     128, piggy,
                                                     cfg.seed);
                        },
                        "I" + std::to_string(banks));
                    ipcSum += ratio(r.ipc(), t4);
                    n += 1.0;
                    noPort += r.pipe.xlate.noPort;
                    requests += r.pipe.xlate.requests;
                    piggybacks += r.pipe.xlate.piggybacks;
                }
                const char *selName =
                    sel == tlb::BankSelect::BitSelect ? "bit" : "xor";
                table.row({
                    "I" + std::to_string(banks) + "/" + selName +
                        (piggy ? "+pb" : ""),
                    fixed(ipcSum / n, 3),
                    fixed(ratio(noPort, requests), 3),
                    percent(ratio(piggybacks, requests), 1),
                });
            }
        }
    }

    std::printf("Ablation: interleaving degree and bank selection "
                "(scale %.2f)\n\n%s\n",
                cfg.scale, table.render().c_str());
    bench::writeTableJson(
        "Ablation: interleaving degree and bank selection", cfg,
        table);
    return 0;
}
