/**
 * @file
 * Figure 6: TLB miss rates for fully-associative TLBs of 4 to 128
 * entries. As in the paper, the 4/8/16-entry configurations use LRU
 * replacement (they model L1 TLBs) and the 32/64/128-entry
 * configurations use random replacement (they model base TLBs). All
 * six TLBs observe each program's full data-reference stream in one
 * functional pass — sim::FuncExecutor with one TLB filter per
 * configuration, the same engine the sampled simulator fast-forwards
 * on (DESIGN.md §14); the summary row is the run-time weighted
 * average, weighted by each program's cycles under the T4 design.
 */

#include <cstdio>
#include <limits>
#include <vector>

#include "bench/harness.hh"
#include "common/job_pool.hh"
#include "common/stats.hh"
#include "cpu/static_code.hh"
#include "sim/fastfwd.hh"
#include "tlb/tlb_array.hh"
#include "vm/program_image.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace hbat;

struct TlbSpec
{
    unsigned entries;
    tlb::Replacement repl;
};

const std::vector<TlbSpec> kSpecs = {
    {4, tlb::Replacement::Lru},    {8, tlb::Replacement::Lru},
    {16, tlb::Replacement::Lru},   {32, tlb::Replacement::Random},
    {64, tlb::Replacement::Random}, {128, tlb::Replacement::Random},
};

/** Miss rate of each spec'd TLB over one program's reference stream. */
std::vector<double>
missRates(const kasm::Program &prog, const vm::PageParams &pages,
          uint64_t seed,
          std::shared_ptr<const cpu::StaticCode> code,
          std::shared_ptr<const vm::ProgramImage> image)
{
    sim::FuncExecutor fx(prog, pages, true, std::move(code),
                         std::move(image));
    for (const TlbSpec &spec : kSpecs)
        fx.addTlbFilter(spec.entries, spec.repl, seed);
    fx.advance(std::numeric_limits<uint64_t>::max());

    std::vector<double> rates;
    for (size_t t = 0; t < kSpecs.size(); ++t) {
        const sim::FuncTlbStats &fs = fx.filterStats(t);
        rates.push_back(ratio(fs.misses, fs.refs));
    }
    return rates;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ExperimentConfig cfg =
        bench::parseArgs(argc, argv, bench::ExperimentConfig{});
    const vm::PageParams pages(cfg.pageBytes);

    TextTable table;
    {
        std::vector<std::string> head{"program"};
        for (const TlbSpec &spec : kSpecs) {
            head.push_back(
                std::to_string(spec.entries) +
                (spec.repl == tlb::Replacement::Lru ? " (LRU)"
                                                    : " (rand)"));
        }
        table.header(std::move(head));
    }

    std::vector<std::string> programs;
    if (cfg.programs.empty()) {
        for (const workloads::Workload &w : workloads::all())
            programs.push_back(w.name);
    } else {
        programs = cfg.programs;
    }

    // Each program's timed reference run and functional TLB pass is
    // one independent cell; rows come out of the pre-sized vectors in
    // program order, identical at any --jobs.
    std::vector<std::vector<double>> all(programs.size());
    std::vector<double> weights(programs.size());
    parallelFor(programs.size(), cfg.jobs, [&](size_t p) {
        const std::string &name = programs[p];
        const kasm::Program prog =
            workloads::build(name, cfg.budget, cfg.scale);
        // The timed reference run and the functional TLB pass share
        // one decode and one page image.
        const auto code = std::make_shared<const cpu::StaticCode>(prog);
        const auto image =
            std::make_shared<const vm::ProgramImage>(prog, pages);

        // Weight: run time in cycles under the reference design.
        sim::SimConfig sc = bench::toSimConfig(cfg);
        sc.design = tlb::Design::T4;
        const sim::SimResult timed =
            sim::simulate(prog, sc, code, image);
        weights[p] = double(timed.cycles());

        all[p] = missRates(prog, pages, cfg.seed, code, image);
        bench::progressLine("  [" + name + "]");
    });

    for (size_t p = 0; p < programs.size(); ++p) {
        std::vector<std::string> row{programs[p]};
        for (double r : all[p])
            row.push_back(percent(r, 3));
        table.row(std::move(row));
    }

    std::vector<std::string> avg{"RTW-avg"};
    for (size_t t = 0; t < kSpecs.size(); ++t) {
        std::vector<double> vals;
        for (const auto &rates : all)
            vals.push_back(rates[t]);
        avg.push_back(percent(weightedAverage(vals, weights), 3));
    }
    table.row(std::move(avg));

    std::printf("Figure 6: TLB miss rates (fully-associative, %u-byte "
                "pages, scale %.2f)\n\n",
                cfg.pageBytes, cfg.scale);
    std::printf("%s\n", table.render().c_str());
    bench::writeTableJson("Figure 6: TLB miss rates", cfg, table);
    return 0;
}
